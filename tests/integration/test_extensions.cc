/**
 * @file
 * Integration tests for the library extensions: hybrid traversal,
 * the SSP spectrum, cache budgets and checkpointing through the full
 * runtime.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.h"
#include "schedule/ssp_scheduler.h"
#include "train/convergence.h"

namespace naspipe {
namespace {

TEST(Extensions, HybridTraversalReducesDependencyStalls)
{
    SearchSpace space("hyb", SpaceFamily::Nlp, 24, 6, 3, 0.3);
    auto runWith = [&space](int streams) {
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = 4;
        config.totalSubnets = 48;
        config.seed = 7;
        config.batch = 16;
        config.hybridStreams = streams;
        return runTraining(space, config);
    };
    RunResult single = runWith(1);
    RunResult hybrid = runWith(4);
    ASSERT_FALSE(single.oom);
    ASSERT_FALSE(hybrid.oom);
    // Streams don't collide: the pipeline fills better.
    EXPECT_LT(hybrid.metrics.bubbleRatio,
              single.metrics.bubbleRatio);
    // And CSP correctness is untouched.
    EXPECT_EQ(hybrid.metrics.causalViolations, 0);
}

TEST(Extensions, HybridTraversalReproducibleAcrossGpuCounts)
{
    SearchSpace space("hyb", SpaceFamily::Nlp, 24, 6, 3, 0.3);
    auto runWith = [&space](int gpus) {
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = gpus;
        config.totalSubnets = 24;
        config.seed = 7;
        config.batch = 16;
        config.hybridStreams = 3;
        return runTraining(space, config);
    };
    RunResult a = runWith(2);
    RunResult b = runWith(6);
    ASSERT_FALSE(a.oom);
    ASSERT_FALSE(b.oom);
    EXPECT_EQ(a.supernetHash, b.supernetHash);
    EXPECT_EQ(a.losses, b.losses);
}

TEST(Extensions, SspThroughputMonotoneInStaleness)
{
    SearchSpace space("ssp", SpaceFamily::Nlp, 16, 4, 5);
    auto throughput = [&space](const SystemModel &system) {
        RuntimeConfig config;
        config.system = system;
        config.numStages = 4;
        config.totalSubnets = 48;
        config.seed = 7;
        config.batch = 16;
        RunResult r = runTraining(space, config);
        EXPECT_FALSE(r.oom);
        return r.metrics.samplesPerSec;
    };
    double csp = throughput(naspipeSystem());
    double s2 = throughput(sspSystem(2));
    double s8 = throughput(sspSystem(8));
    EXPECT_GE(s2, csp * 0.99);
    EXPECT_GE(s8, s2 * 0.99);
    EXPECT_GT(s8, csp);
}

TEST(Extensions, SspIntroducesViolations)
{
    SearchSpace space("ssp", SpaceFamily::Nlp, 8, 2, 5);
    RuntimeConfig config;
    config.system = sspSystem(4);
    config.numStages = 4;
    config.totalSubnets = 32;
    config.seed = 7;
    RunResult r = runTraining(space, config);
    ASSERT_FALSE(r.oom);
    EXPECT_GT(r.metrics.causalViolations, 0);
}

TEST(Extensions, StallDiagnosticsAccountForIdleDispatch)
{
    // A dependency-dense space on CSP must record dependency stalls;
    // the greedy baseline on the same space records none.
    SearchSpace space("dense", SpaceFamily::Nlp, 8, 2, 3);
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = 4;
    config.totalSubnets = 24;
    config.seed = 7;
    RunResult csp = runTraining(space, config);
    ASSERT_FALSE(csp.oom);
    EXPECT_GT(csp.metrics.stallDependency, 0u);

    config.system = vpipeSystem();
    RunResult greedy = runTraining(space, config);
    ASSERT_FALSE(greedy.oom);
    EXPECT_EQ(greedy.metrics.stallDependency, 0u);
}

TEST(Extensions, CheckpointFromRunRestoresSearchResult)
{
    SearchSpace space("ckpt", SpaceFamily::Cv, 8, 4, 5, 0.3);
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = 4;
    config.totalSubnets = 24;
    config.seed = 9;
    RunResult run = runTraining(space, config);
    ASSERT_FALSE(run.oom);

    std::stringstream buffer;
    ASSERT_TRUE(run.store->save(buffer));
    ParameterStore restored(space, 9);
    ASSERT_TRUE(restored.load(buffer));
    EXPECT_EQ(restored.supernetHash(), run.supernetHash);

    NumericExecutor::Config ec;
    ec.dataSeed = deriveSeed(9, "data");
    ec.batch = run.metrics.batch;
    NumericExecutor evaluator(restored, ec);
    SearchResult search = searchBestSubnet(
        evaluator, run.sampled, 90.0, deriveSeed(9, "search"));
    EXPECT_EQ(search.best.id(), run.bestSubnet);
}

TEST(Extensions, TraceExportsFromRealRun)
{
    SearchSpace space = makeTinySpace();
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = 2;
    config.totalSubnets = 4;
    config.seed = 7;
    config.traceEnabled = true;
    RunResult r = runTraining(space, config);
    ASSERT_FALSE(r.oom);
    std::string json = r.trace->exportChromeJson();
    EXPECT_NE(json.find("fwd SN0"), std::string::npos);
    EXPECT_NE(json.find("bwd SN3"), std::string::npos);
}

TEST(Extensions, BusyTimeConservation)
{
    // The trace's task durations must add up to the engines' busy
    // time: nothing executes off the books.
    SearchSpace space = makeTinySpace();
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = 2;
    config.totalSubnets = 8;
    config.seed = 7;
    config.traceEnabled = true;
    RunResult r = runTraining(space, config);
    ASSERT_FALSE(r.oom);

    double traceBusy = 0.0;
    for (const auto &rec : r.trace->taskTimeline())
        traceBusy += ticksToSec(rec.end - rec.start);
    double execBusy = 0.0;
    for (const auto &[id, loss] : r.losses) {
        (void)loss;
        execBusy += 0.0;  // per-subnet busy not exposed; use metric
    }
    EXPECT_NEAR(traceBusy,
                r.metrics.meanExecSeconds * r.metrics.finishedSubnets,
                1e-6);
}

} // namespace
} // namespace naspipe
