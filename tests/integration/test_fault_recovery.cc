/**
 * @file
 * Fault-injection and recovery integration tests.
 *
 * The paper's Definition 1 makes a CSP run's trained weights a pure
 * function of (seed, scores-by-ID). These tests extend that claim to
 * runs that *fail*: a run interrupted by an injected GPU crash or
 * link drop, rolled back to the last drained checkpoint, and replayed
 * must terminate with the bitwise-identical supernet — on the paper's
 * own NLP.c1 and CV.c1 spaces and across GPU counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/engine.h"
#include "runtime/replay.h"
#include "train/run_checkpoint.h"

namespace naspipe {
namespace {

RuntimeConfig
baseConfig(int gpus, int steps, int batch, std::uint64_t seed = 7)
{
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = gpus;
    config.totalSubnets = steps;
    config.seed = seed;
    config.batch = batch;
    return config;
}

FaultSpec
crashAt(int step, int stage = 1)
{
    FaultSpec f;
    f.kind = FaultKind::GpuCrash;
    f.atStep = step;
    f.stage = stage;
    return f;
}

std::string
tempCkptPath(const std::string &tag)
{
    return ::testing::TempDir() + "naspipe_" + tag + ".ckpt";
}

TEST(FaultRecovery, CrashRecoveryMatchesFaultFreeRunOnPaperSpaces)
{
    // Acceptance gate: crash at step k, recover from the last drained
    // checkpoint, and terminate with the fault-free run's exact
    // weights — on NLP.c1 and CV.c1, each at two GPU counts with the
    // batch pinned (the paper's cross-cluster methodology).
    for (const char *name : {"NLP.c1", "CV.c1"}) {
        SearchSpace space = makeSpaceByName(name);
        int batch =
            Engine::commonBatch(space, naspipeSystem(), {4, 8});
        ASSERT_GT(batch, 0) << name;
        std::uint64_t referenceHash = 0;
        for (int gpus : {4, 8}) {
            RuntimeConfig clean = baseConfig(gpus, 20, batch);
            RunResult faultFree = runTraining(space, clean);
            ASSERT_FALSE(faultFree.oom) << name << " " << gpus;

            RuntimeConfig faulty = clean;
            faulty.ckptInterval = 8;
            faulty.faults = {crashAt(13)};
            RunResult recovered = runTraining(space, faulty);
            ASSERT_FALSE(recovered.oom);
            ASSERT_FALSE(recovered.failed) << recovered.error;

            EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash)
                << name << " on " << gpus << " GPUs";
            RunComparison cmp = compareRuns(faultFree, recovered);
            EXPECT_TRUE(cmp.reproducible())
                << name << " on " << gpus << " GPUs";

            const RunMetrics &m = recovered.metrics;
            EXPECT_EQ(m.faultsInjected, 1);
            EXPECT_EQ(m.recoveries, 1);
            EXPECT_GT(m.subnetsReplayed, 0);
            EXPECT_GE(m.checkpointsWritten, 1);
            EXPECT_GT(m.checkpointBytes, 0u);
            EXPECT_GT(m.recoverySeconds, 0.0);

            // And the recovered runs themselves agree across GPU
            // counts (Definition 1 survives the failure).
            if (referenceHash == 0)
                referenceHash = recovered.supernetHash;
            else
                EXPECT_EQ(recovered.supernetHash, referenceHash)
                    << name;
        }
    }
}

TEST(FaultRecovery, CrashBeforeFirstCheckpointRestartsFromZero)
{
    // A crash before any checkpoint exists replays the whole prefix:
    // every completed subnet is lost, and the run still converges to
    // the fault-free weights.
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = baseConfig(4, 24, 16);
    RunResult faultFree = runTraining(space, clean);
    ASSERT_FALSE(faultFree.oom);

    RuntimeConfig faulty = clean;
    faulty.ckptInterval = 16;
    faulty.faults = {crashAt(5)};
    RunResult recovered = runTraining(space, faulty);
    ASSERT_FALSE(recovered.failed) << recovered.error;
    EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(recovered.metrics.recoveries, 1);
    EXPECT_EQ(recovered.metrics.subnetsReplayed, 5);
}

TEST(FaultRecovery, CrashWithoutCheckpointingStillReproduces)
{
    // ckptInterval == 0: no mid-run checkpoints at all, recovery
    // restarts training from subnet 0 and still matches.
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = baseConfig(4, 16, 16);
    RunResult faultFree = runTraining(space, clean);

    RuntimeConfig faulty = clean;
    faulty.faults = {crashAt(9)};
    RunResult recovered = runTraining(space, faulty);
    ASSERT_FALSE(recovered.failed) << recovered.error;
    EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(recovered.metrics.subnetsReplayed, 9);
    EXPECT_EQ(recovered.metrics.checkpointsWritten, 0);
}

TEST(FaultRecovery, LinkDropRecoversLikeACrash)
{
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = baseConfig(4, 24, 16);
    RunResult faultFree = runTraining(space, clean);

    RuntimeConfig faulty = clean;
    faulty.ckptInterval = 8;
    FaultSpec drop;
    drop.kind = FaultKind::LinkDrop;
    drop.atStep = 14;
    drop.stage = 2;
    faulty.faults = {drop};
    RunResult recovered = runTraining(space, faulty);
    ASSERT_FALSE(recovered.failed) << recovered.error;
    EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(recovered.metrics.recoveries, 1);
}

TEST(FaultRecovery, TransientFaultsPerturbTimingNotWeights)
{
    // Stalls and bandwidth degradation change the schedule, never
    // the training outcome: CSP's sequential equivalence absorbs
    // arbitrary timing skew without any recovery.
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = baseConfig(4, 24, 16);
    RunResult faultFree = runTraining(space, clean);

    RuntimeConfig faulty = clean;
    FaultSpec stall;
    stall.kind = FaultKind::StageStall;
    stall.atStep = 6;
    stall.stage = 2;
    stall.durationMs = 200.0;
    FaultSpec degrade;
    degrade.kind = FaultKind::LinkDegrade;
    degrade.atStep = 10;
    degrade.stage = 1;
    degrade.durationMs = 500.0;
    degrade.factor = 8.0;
    faulty.faults = {stall, degrade};
    RunResult perturbed = runTraining(space, faulty);
    ASSERT_FALSE(perturbed.failed) << perturbed.error;
    EXPECT_EQ(perturbed.supernetHash, faultFree.supernetHash);
    EXPECT_TRUE(compareRuns(faultFree, perturbed).reproducible());
    EXPECT_EQ(perturbed.metrics.faultsInjected, 2);
    EXPECT_EQ(perturbed.metrics.recoveries, 0);
    EXPECT_EQ(perturbed.metrics.subnetsReplayed, 0);
}

TEST(FaultRecovery, MultipleCrashesEachRecover)
{
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = baseConfig(4, 32, 16);
    RunResult faultFree = runTraining(space, clean);

    RuntimeConfig faulty = clean;
    faulty.ckptInterval = 4;
    faulty.faults = {crashAt(10, 1), crashAt(23, 3)};
    RunResult recovered = runTraining(space, faulty);
    ASSERT_FALSE(recovered.failed) << recovered.error;
    EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(recovered.metrics.faultsInjected, 2);
    EXPECT_EQ(recovered.metrics.recoveries, 2);
}

TEST(FaultRecovery, SeededRandomPlanIsDeterministicAndSurvivable)
{
    // Chaos-style: a seeded random plan is a pure function of its
    // arguments, and a run under it still reproduces the fault-free
    // weights (transient faults are absorbed; fail-stop ones
    // recover).
    auto planA = FaultInjector::randomPlan(11, 3, 20, 4);
    auto planB = FaultInjector::randomPlan(11, 3, 20, 4);
    ASSERT_EQ(planA.size(), planB.size());
    for (std::size_t i = 0; i < planA.size(); i++)
        EXPECT_EQ(planA[i].describe(), planB[i].describe());

    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = baseConfig(4, 24, 16);
    RunResult faultFree = runTraining(space, clean);

    RuntimeConfig faulty = clean;
    faulty.ckptInterval = 8;
    faulty.faults = planA;
    RunResult survived = runTraining(space, faulty);
    ASSERT_FALSE(survived.failed) << survived.error;
    EXPECT_EQ(survived.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(survived.metrics.faultsInjected,
              static_cast<int>(planA.size()));
}

TEST(FaultRecovery, ResumeFromCheckpointFileMatchesUninterrupted)
{
    // Produce a mid-run checkpoint file (the last drain boundary of
    // a 22-subnet run with interval 8 is subnet 16), then resume a
    // fresh process from it: the final weights must equal the
    // uninterrupted run's, on the same and on a different GPU count.
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    std::string path = tempCkptPath("resume");
    RuntimeConfig producer = baseConfig(4, 22, 16);
    producer.ckptInterval = 8;
    producer.ckptPath = path;
    RunResult full = runTraining(space, producer);
    ASSERT_FALSE(full.failed) << full.error;

    RunCheckpoint ckpt;
    ASSERT_TRUE(ckpt.loadFile(path));
    EXPECT_EQ(ckpt.completed, 16u);
    EXPECT_EQ(ckpt.totalSubnets, 22u);

    for (int gpus : {4, 8}) {
        RuntimeConfig resumer = baseConfig(gpus, 22, 16);
        resumer.resumePath = path;
        RunResult resumed = runTraining(space, resumer);
        ASSERT_FALSE(resumed.failed)
            << gpus << " GPUs: " << resumed.error;
        EXPECT_EQ(resumed.supernetHash, full.supernetHash)
            << "resumed on " << gpus << " GPUs";
    }
    std::remove(path.c_str());
}

TEST(FaultRecovery, ResumeRejectsMismatchedConfig)
{
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    std::string path = tempCkptPath("mismatch");
    RuntimeConfig producer = baseConfig(4, 22, 16);
    producer.ckptInterval = 8;
    producer.ckptPath = path;
    ASSERT_FALSE(runTraining(space, producer).failed);

    // Different seed: Definition 1's "same inputs" is violated, the
    // run must refuse rather than silently diverge.
    RuntimeConfig other = baseConfig(4, 22, 16, /*seed=*/8);
    other.resumePath = path;
    RunResult result = runTraining(space, other);
    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.error.empty());
    std::remove(path.c_str());
}

TEST(FaultRecovery, CorruptResumeFileFailsCleanlyNotFatally)
{
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    std::string path = tempCkptPath("corrupt");
    RuntimeConfig producer = baseConfig(4, 22, 16);
    producer.ckptInterval = 8;
    producer.ckptPath = path;
    ASSERT_FALSE(runTraining(space, producer).failed);

    // Flip one byte in the middle of the file.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    ASSERT_GT(bytes.size(), 100u);
    bytes[bytes.size() / 2] ^= 0x20;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    RuntimeConfig resumer = baseConfig(4, 22, 16);
    resumer.resumePath = path;
    RunResult result = runTraining(space, resumer);
    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.error.empty());

    // Truncated file: same clean failure.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 3));
    }
    result = runTraining(space, resumer);
    EXPECT_TRUE(result.failed);

    // Missing file: clean failure too.
    std::remove(path.c_str());
    result = runTraining(space, resumer);
    EXPECT_TRUE(result.failed);
}

TEST(FaultRecovery, CheckpointWriteCostIsAccounted)
{
    // Checkpointing is not free: the overhead model must surface the
    // write time and bytes so the interval can be tuned (see
    // bench/fault_recovery_overhead.cc).
    SearchSpace space("faults", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig config = baseConfig(4, 24, 16);
    config.ckptInterval = 8;
    RunResult result = runTraining(space, config);
    ASSERT_FALSE(result.failed) << result.error;
    EXPECT_EQ(result.metrics.checkpointsWritten, 3);
    EXPECT_GT(result.metrics.checkpointBytes, 0u);
    EXPECT_GT(result.metrics.checkpointSeconds, 0.0);
    EXPECT_EQ(result.metrics.faultsInjected, 0);

    // And checkpointing alone must not change the outcome.
    RunResult plain = runTraining(space, baseConfig(4, 24, 16));
    EXPECT_EQ(result.supernetHash, plain.supernetHash);
}

TEST(FaultRecovery, EvolutionSearchRecoversWithFeedbackLag)
{
    // The hardest case: a feedback-driven sampler whose draws depend
    // on delivered scores. The checkpoint captures the score frontier
    // and the replay feeds scores back at the same logical lag, so
    // even evolution search survives a crash bitwise.
    SearchSpace space("faults-evo", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = baseConfig(4, 32, 16);
    clean.evolutionSearch = true;
    RunResult faultFree = runTraining(space, clean);
    ASSERT_FALSE(faultFree.oom);

    RuntimeConfig faulty = clean;
    faulty.ckptInterval = 8;
    faulty.faults = {crashAt(19, 2)};
    RunResult recovered = runTraining(space, faulty);
    ASSERT_FALSE(recovered.failed) << recovered.error;
    EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash);
    ASSERT_EQ(recovered.sampled.size(), faultFree.sampled.size());
    for (std::size_t i = 0; i < faultFree.sampled.size(); i++)
        EXPECT_EQ(recovered.sampled[i], faultFree.sampled[i])
            << "draw " << i;
}

} // namespace
} // namespace naspipe
