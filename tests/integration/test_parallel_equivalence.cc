/**
 * @file
 * Threaded-vs-simulated equivalence (the threaded executor's
 * acceptance test).
 *
 * Definition 1 extended to real concurrency: for the same
 * (space, seed, worker count), the ParallelRuntime's trained supernet
 * must be bitwise identical to the discrete-event simulator's — which
 * the simulator in turn proves equal to sequential training. Checked
 * on the paper spaces NLP.c1 and CV.c1 across 1/2/4/8 workers, and
 * across repeated threaded runs (the OS scheduler will interleave the
 * workers differently every time; the weights must not care).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/parallel_runtime.h"
#include "verify/csp_oracle.h"

namespace naspipe {
namespace {

RuntimeConfig
config(int stages, int steps)
{
    RuntimeConfig c;
    c.system = naspipeSystem();
    c.numStages = stages;
    c.totalSubnets = steps;
    c.seed = 7;
    return c;
}

/** Everything Definition 1 compares, from either executor. */
struct Fingerprint {
    std::uint64_t weights = 0;
    std::map<SubnetId, float> losses;
    SubnetId bestSubnet = -1;
    int causalViolations = -1;
};

Fingerprint
fingerprint(const RunResult &result)
{
    EXPECT_FALSE(result.failed) << result.error;
    EXPECT_FALSE(result.oom);
    Fingerprint f;
    f.weights = result.supernetHash;
    f.losses = result.losses;
    f.bestSubnet = result.bestSubnet;
    f.causalViolations = result.metrics.causalViolations;
    return f;
}

void
expectEquivalent(const std::string &spaceName, int workers, int steps)
{
    SCOPED_TRACE(spaceName + " with " + std::to_string(workers) +
                 " workers");
    SearchSpace space = makeSpaceByName(spaceName);
    RuntimeConfig c = config(workers, steps);

    RunResult simResult = runTraining(space, c);

    // The threaded run executes under the CspOracle: live commit
    // monotonicity during the run, full access-log audit after it.
    CspOracle oracle;
    c.commitObserver = [&oracle](std::uint64_t layerKey,
                                 SubnetId subnet, std::size_t rank,
                                 int stage) {
        oracle.observeCommit(layerKey, subnet, rank, stage);
    };
    RunResult thrResult = runTrainingThreaded(space, c);

    Fingerprint sim = fingerprint(simResult);
    Fingerprint thr = fingerprint(thrResult);

    EXPECT_TRUE(oracle.auditLog(thrResult.store->accessLog()));
    EXPECT_TRUE(oracle.ok()) << oracle.report();
    EXPECT_GT(oracle.observedCommits(), 0u);

    EXPECT_EQ(sim.causalViolations, 0);
    EXPECT_EQ(thr.causalViolations, 0);
    EXPECT_EQ(sim.weights, thr.weights);
    EXPECT_EQ(sim.losses, thr.losses);  // float-exact, not approx
    EXPECT_EQ(sim.bestSubnet, thr.bestSubnet);
}

TEST(ParallelEquivalence, NlpC1MatchesSimulatorAcrossWorkerCounts)
{
    for (int workers : {1, 2, 4, 8})
        expectEquivalent("NLP.c1", workers, 32);
}

TEST(ParallelEquivalence, CvC1MatchesSimulatorAcrossWorkerCounts)
{
    for (int workers : {1, 2, 4, 8})
        expectEquivalent("CV.c1", workers, 32);
}

TEST(ParallelEquivalence, RepeatedThreadedRunsAreBitwiseIdentical)
{
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(4, 32);
    Fingerprint first =
        fingerprint(runTrainingThreaded(space, c));
    for (int run = 1; run < 5; run++) {
        SCOPED_TRACE("repeat " + std::to_string(run));
        Fingerprint again =
            fingerprint(runTrainingThreaded(space, c));
        EXPECT_EQ(first.weights, again.weights);
        EXPECT_EQ(first.losses, again.losses);
        EXPECT_EQ(first.bestSubnet, again.bestSubnet);
        EXPECT_EQ(again.causalViolations, 0);
    }
}

TEST(ParallelEquivalence, FeedbackDrivenSamplerMatchesToo)
{
    // The evolution sampler consumes scores with a feedback lag; the
    // coordinator must replicate the simulator's delivery order or
    // the two executors sample different subnet streams entirely.
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(4, 48);
    c.evolutionSearch = true;

    RunResult sim = runTraining(space, c);
    RunResult thr = runTrainingThreaded(space, c);
    ASSERT_FALSE(sim.failed);
    ASSERT_FALSE(thr.failed) << thr.error;
    ASSERT_EQ(sim.sampled.size(), thr.sampled.size());
    for (std::size_t i = 0; i < sim.sampled.size(); i++) {
        EXPECT_EQ(sim.sampled[i].choices(), thr.sampled[i].choices())
            << "diverged at SN" << i;
    }
    EXPECT_EQ(sim.supernetHash, thr.supernetHash);
}

} // namespace
} // namespace naspipe
