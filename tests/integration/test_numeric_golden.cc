/**
 * @file
 * The numeric kernel layer's golden acceptance: for every
 * (space, precision mode, worker count), the trained supernet hash
 * must (a) agree between the simulator and the threaded executor
 * bit for bit, with the threaded run CSP-clean under a live oracle,
 * and (b) equal the committed golden hash — the fp32 goldens are the
 * pre-kernel-refactor trajectories, proving the tree reductions,
 * views and arenas changed no trained bit; the fp16_rne goldens pin
 * the half-storage trajectories the same way.
 *
 * If an intentional numeric change moves a hash, recapture with:
 *   naspipe_cli --space S --gpus G --steps 32 --seed 7
 *               --executor threads [--precision fp16]
 * and update BOTH this table and the one in tools/naspipe_bench.cc.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/engine.h"
#include "exec/parallel_runtime.h"
#include "verify/csp_oracle.h"

namespace naspipe {
namespace {

struct Golden {
    const char *space;
    kernels::PrecisionMode mode;
    int workers;
    std::uint64_t hash;
};

// seed 7, 32 steps. Hashes depend on the worker count (it decides
// partitioning and batch), so goldens are per (space, mode, workers);
// sim == threads is the invariant at every point of the grid.
constexpr Golden kGoldens[] = {
    {"NLP.c1", kernels::PrecisionMode::Fp32, 1,
     0x31b24902f4f10672ULL},
    {"NLP.c1", kernels::PrecisionMode::Fp32, 2,
     0x8effdefe3689d2edULL},
    {"NLP.c1", kernels::PrecisionMode::Fp32, 4,
     0x62a61404a040bcdaULL},
    {"NLP.c1", kernels::PrecisionMode::Fp32, 8,
     0xec3efbd417f31ce1ULL},
    {"CV.c1", kernels::PrecisionMode::Fp32, 1,
     0xe27c77fa7cf5ebe3ULL},
    {"CV.c1", kernels::PrecisionMode::Fp32, 2,
     0xb7389a5689c7831aULL},
    {"CV.c1", kernels::PrecisionMode::Fp32, 4,
     0x11818c7988908918ULL},
    {"CV.c1", kernels::PrecisionMode::Fp32, 8,
     0x11818c7988908918ULL},
    {"NLP.c1", kernels::PrecisionMode::Fp16Rne, 1,
     0x69fd55d9981fcd1fULL},
    {"NLP.c1", kernels::PrecisionMode::Fp16Rne, 2,
     0x35842c6457b96261ULL},
    {"NLP.c1", kernels::PrecisionMode::Fp16Rne, 4,
     0xcc5b8116dc75ad43ULL},
    {"NLP.c1", kernels::PrecisionMode::Fp16Rne, 8,
     0xb51cebaa73c1c216ULL},
    {"CV.c1", kernels::PrecisionMode::Fp16Rne, 1,
     0x2cd7a20152c599f2ULL},
    {"CV.c1", kernels::PrecisionMode::Fp16Rne, 2,
     0x4128c78a257a9192ULL},
    {"CV.c1", kernels::PrecisionMode::Fp16Rne, 4,
     0x7df4511c1a20f704ULL},
    {"CV.c1", kernels::PrecisionMode::Fp16Rne, 8,
     0x7df4511c1a20f704ULL},
};

TEST(NumericGolden, EveryModeWorkersExecutorLandsOnTheGoldenHash)
{
    for (const Golden &g : kGoldens) {
        SCOPED_TRACE(std::string(g.space) + " " +
                     kernels::precisionModeName(g.mode) + " " +
                     std::to_string(g.workers) + " workers");
        SearchSpace space = makeSpaceByName(g.space);
        RuntimeConfig c;
        c.system = naspipeSystem();
        c.numStages = g.workers;
        c.totalSubnets = 32;
        c.seed = 7;
        c.precision = g.mode;

        RunResult sim = runTraining(space, c);
        ASSERT_FALSE(sim.failed) << sim.error;
        ASSERT_FALSE(sim.oom);

        CspOracle oracle;
        c.commitObserver = [&oracle](std::uint64_t layerKey,
                                     SubnetId subnet,
                                     std::size_t rank, int stage) {
            oracle.observeCommit(layerKey, subnet, rank, stage);
        };
        RunResult thr = runTrainingThreaded(space, c);
        ASSERT_FALSE(thr.failed) << thr.error;
        ASSERT_FALSE(thr.oom);
        EXPECT_TRUE(oracle.auditLog(thr.store->accessLog()));
        EXPECT_TRUE(oracle.ok()) << oracle.report();

        EXPECT_EQ(sim.supernetHash, thr.supernetHash);
        EXPECT_EQ(sim.losses, thr.losses);
        EXPECT_EQ(thr.supernetHash, g.hash)
            << "trained weights moved off the committed golden";
    }
}

TEST(NumericGolden, PrecisionModesProduceDistinctTrajectories)
{
    // fp16 storage rounding must actually bite: a half-rounded run
    // that lands on the fp32 hash would mean quantization silently
    // no-opped.
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c;
    c.system = naspipeSystem();
    c.numStages = 4;
    c.totalSubnets = 32;
    c.seed = 7;
    RunResult fp32 = runTraining(space, c);
    c.precision = kernels::PrecisionMode::Fp16Rne;
    RunResult fp16 = runTraining(space, c);
    ASSERT_FALSE(fp32.failed);
    ASSERT_FALSE(fp16.failed);
    EXPECT_NE(fp32.supernetHash, fp16.supernetHash);
}

} // namespace
} // namespace naspipe
