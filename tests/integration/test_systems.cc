/**
 * @file
 * Cross-system behavioural integration tests: each system's
 * signature characteristics must show up in a full run.
 */

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "runtime/pipeline_runtime.h"

namespace naspipe {
namespace {

RunResult
run(const SearchSpace &space, const SystemModel &system, int gpus = 4,
    int steps = 32)
{
    RuntimeConfig config;
    config.system = system;
    config.numStages = gpus;
    config.totalSubnets = steps;
    config.seed = 7;
    config.traceEnabled = true;
    return runTraining(space, config);
}

TEST(Systems, VpipeCacheHitIsLowNaspipeHigh)
{
    SearchSpace space = makeNlpC2();
    RunResult naspipe = run(space, naspipeSystem(), 8, 48);
    RunResult vpipe = run(space, vpipeSystem(), 8, 48);
    ASSERT_FALSE(naspipe.oom);
    ASSERT_FALSE(vpipe.oom);
    // Table 2: NASPipe ~86-97 %, VPipe ~1-8 %.
    ASSERT_TRUE(naspipe.metrics.cacheHitRate.has_value());
    ASSERT_TRUE(vpipe.metrics.cacheHitRate.has_value());
    EXPECT_GT(*naspipe.metrics.cacheHitRate, 0.5);
    EXPECT_LT(*vpipe.metrics.cacheHitRate, 0.25);
}

TEST(Systems, AllResidentSystemsReportNoCacheStats)
{
    SearchSpace space = makeNlpC3();
    RunResult gpipe = run(space, gpipeSystem());
    ASSERT_FALSE(gpipe.oom);
    EXPECT_FALSE(gpipe.metrics.cacheHitRate.has_value());
    EXPECT_EQ(gpipe.metrics.cpuMemBytes, 0u);
}

TEST(Systems, SwapSystemsUseCpuMemoryOfSupernetSize)
{
    SearchSpace space = makeNlpC3();
    RunResult naspipe = run(space, naspipeSystem());
    ASSERT_FALSE(naspipe.oom);
    EXPECT_EQ(naspipe.metrics.cpuMemBytes, space.totalParamBytes());
}

TEST(Systems, BspFlushesAppearInTrace)
{
    SearchSpace space = makeNlpC3();
    RunResult gpipe = run(space, gpipeSystem(), 4, 16);
    ASSERT_FALSE(gpipe.oom);
    // 16 subnets in bulks of 4 => 4 flushes.
    EXPECT_EQ(gpipe.trace->byKind(TraceKind::Flush).size(), 4u);
    RunResult naspipe = run(space, naspipeSystem(), 4, 16);
    EXPECT_TRUE(naspipe.trace->byKind(TraceKind::Flush).empty());
}

TEST(Systems, PipedreamKeepsPipelineFull)
{
    SearchSpace space = makeNlpC3();
    RunResult pipedream = run(space, pipedreamSystem(), 8, 48);
    RunResult gpipe = run(space, gpipeSystem(), 8, 48);
    ASSERT_FALSE(pipedream.oom);
    ASSERT_FALSE(gpipe.oom);
    // ASP's bubble (paper 0.1) sits below BSP's (paper 0.57).
    EXPECT_LT(pipedream.metrics.bubbleRatio,
              gpipe.metrics.bubbleRatio);
}

TEST(Systems, CspBubbleShrinksWithSpaceSize)
{
    // §5.1: "with the growth of search space size, the bubble time
    // ratio of NASPipe decreases".
    SearchSpace big = makeNlpC1();
    SearchSpace small = makeNlpC3();
    RunResult bigRun = run(big, naspipeSystem(), 8, 48);
    RunResult smallRun = run(small, naspipeSystem(), 8, 48);
    ASSERT_FALSE(bigRun.oom);
    ASSERT_FALSE(smallRun.oom);
    EXPECT_LT(bigRun.metrics.bubbleRatio,
              smallRun.metrics.bubbleRatio);
}

TEST(Systems, NaspipeBeatsBaselinesOnLargestSpace)
{
    // NLP.c0: GPipe/PipeDream OOM; NASPipe outruns VPipe (§5.1).
    SearchSpace space = makeNlpC0();
    RunResult naspipe = run(space, naspipeSystem(), 8, 32);
    RunResult gpipe = run(space, gpipeSystem(), 8, 32);
    RunResult vpipe = run(space, vpipeSystem(), 8, 32);
    ASSERT_FALSE(naspipe.oom);
    EXPECT_TRUE(gpipe.oom);
    ASSERT_FALSE(vpipe.oom);
    EXPECT_GT(naspipe.metrics.samplesPerSec,
              vpipe.metrics.samplesPerSec);
}

TEST(Systems, ViolationCountsOnlyForNonCsp)
{
    SearchSpace space("dense", SpaceFamily::Nlp, 8, 2, 3);
    RunResult naspipe = run(space, naspipeSystem(), 4, 24);
    RunResult gpipe = run(space, gpipeSystem(), 4, 24);
    RunResult pipedream = run(space, pipedreamSystem(), 4, 24);
    EXPECT_EQ(naspipe.metrics.causalViolations, 0);
    EXPECT_GT(gpipe.metrics.causalViolations, 0);
    EXPECT_GT(pipedream.metrics.causalViolations, 0);
}

TEST(Systems, MirrorTrafficOnlyWithMirroring)
{
    SearchSpace space = makeNlpC3();
    RunResult naspipe = run(space, naspipeSystem(), 4, 24);
    RunResult noMirror = run(space, naspipeWithoutMirroring(), 4, 24);
    ASSERT_FALSE(naspipe.oom);
    EXPECT_GT(naspipe.metrics.mirrorsCreated, 0u);
    EXPECT_EQ(noMirror.metrics.mirrorSyncBytes, 0u);
}

TEST(Systems, WithoutPredictorSupportsSmallerBatch)
{
    SearchSpace space = makeNlpC2();
    RunResult full = run(space, naspipeSystem(), 8, 16);
    RunResult noPred = run(space, naspipeWithoutPredictor(), 8, 16);
    ASSERT_FALSE(full.oom);
    ASSERT_FALSE(noPred.oom);
    EXPECT_GT(full.metrics.batch, noPred.metrics.batch);
}

TEST(Systems, ExecTimeLongerForBiggerBatches)
{
    SearchSpace space = makeNlpC2();
    RunResult naspipe = run(space, naspipeSystem(), 8, 24);
    RunResult pipedream = run(space, pipedreamSystem(), 8, 24);
    ASSERT_FALSE(naspipe.oom);
    ASSERT_FALSE(pipedream.oom);
    // Table 2: NASPipe's per-subnet exec (big batch) exceeds
    // PipeDream's (small batch).
    EXPECT_GT(naspipe.metrics.meanExecSeconds,
              pipedream.metrics.meanExecSeconds);
}

} // namespace
} // namespace naspipe
