/**
 * @file
 * End-to-end integration: the Engine facade, experiment helpers and
 * report builders across modules.
 */

#include <gtest/gtest.h>

#include "core/ablation.h"
#include "core/report.h"

namespace naspipe {
namespace {

TEST(EndToEnd, EngineTrainsOnPaperSpace)
{
    SearchSpace space = makeNlpC3();
    Engine::Options options;
    options.gpus = 4;
    options.steps = 24;
    Engine engine(space, options);
    RunResult result = engine.train();
    ASSERT_FALSE(result.oom);
    EXPECT_EQ(result.metrics.finishedSubnets, 24);
    EXPECT_GT(result.metrics.samplesPerSec, 0.0);
    EXPECT_GT(result.metrics.batch, 0);
    EXPECT_GT(result.searchAccuracy, 0.0);
    EXPECT_EQ(result.metrics.causalViolations, 0);
}

TEST(EndToEnd, EvolutionSearchCompletes)
{
    SearchSpace space = makeNlpC3();
    Engine::Options options;
    options.gpus = 4;
    options.steps = 24;
    options.evolutionSearch = true;
    Engine engine(space, options);
    RunResult result = engine.train();
    ASSERT_FALSE(result.oom);
    EXPECT_EQ(result.metrics.finishedSubnets, 24);
}

TEST(EndToEnd, EvaluationMatrixCoversAllCells)
{
    EvaluationDefaults defaults;
    defaults.gpus = 4;
    defaults.steps = 12;
    auto results = runEvaluationMatrix({"NLP.c3", "CV.c3"},
                                       evaluatedSystems(), defaults);
    EXPECT_EQ(results.size(), 8u);
    int completed = 0;
    for (const auto &r : results) {
        if (!r.run.oom) {
            completed++;
            EXPECT_EQ(r.run.metrics.finishedSubnets, 12)
                << r.spaceName << "/" << r.systemName;
        }
    }
    EXPECT_GE(completed, 6);
}

TEST(EndToEnd, NormalizedThroughputAgainstBaseline)
{
    SearchSpace space = makeNlpC3();
    EvaluationDefaults defaults;
    defaults.gpus = 4;
    defaults.steps = 16;
    auto naspipe = runExperiment(space, naspipeSystem(), defaults);
    auto gpipe = runExperiment(space, gpipeSystem(), defaults);
    double norm = normalizedThroughput(naspipe.run, gpipe.run);
    EXPECT_GT(norm, 0.0);
    EXPECT_DOUBLE_EQ(normalizedThroughput(gpipe.run, gpipe.run), 1.0);
}

TEST(EndToEnd, Table2RowsRenderForEverySystem)
{
    EvaluationDefaults defaults;
    defaults.gpus = 4;
    defaults.steps = 8;
    SearchSpace space = makeCvC3();
    std::vector<ExperimentResult> results;
    for (const auto &system : evaluatedSystems())
        results.push_back(runExperiment(space, system, defaults));
    TextTable table = buildTable2(results);
    std::string out = table.render();
    EXPECT_NE(out.find("NASPipe"), std::string::npos);
    EXPECT_NE(out.find("VPipe"), std::string::npos);
    EXPECT_EQ(table.rows(), 4u);
}

TEST(EndToEnd, Table1AndTable5Build)
{
    TextTable t1 = buildTable1(defaultSpaceNames());
    EXPECT_EQ(t1.rows(), 7u);
    TextTable t5 = buildTable5();
    EXPECT_EQ(t5.rows(), 8u);
    EXPECT_NE(t5.render().find("8 Head Attention"),
              std::string::npos);
}

TEST(EndToEnd, AblationStudyRunsAllVariants)
{
    SearchSpace space = makeNlpC3();
    EvaluationDefaults defaults;
    defaults.gpus = 4;
    defaults.steps = 16;
    auto entries = runAblationStudy(space, defaults);
    ASSERT_EQ(entries.size(), 4u);
    EXPECT_DOUBLE_EQ(entries[0].normalizedThroughput, 1.0);
    // The flush-gated variant must be slower than full NASPipe.
    EXPECT_LT(entries[1].normalizedThroughput, 1.0);
    TextTable table = buildAblationTable(entries);
    EXPECT_EQ(table.rows(), 4u);
}

TEST(EndToEnd, ScoreFormatting)
{
    EXPECT_EQ(formatScore(22.17, SpaceFamily::Nlp), "22.17");
    EXPECT_EQ(formatScore(82.4, SpaceFamily::Cv), "82.4%");
}

} // namespace
} // namespace naspipe
