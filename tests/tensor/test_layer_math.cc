/**
 * @file
 * Surrogate layer math tests: gradient correctness and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/layer_math.h"

namespace naspipe {
namespace {

LayerParams
makeParams(std::uint64_t seed = 5)
{
    LayerParams p;
    initLayerParams(p, seed, 2, 3);
    return p;
}

Tensor
makeInput(float base = 0.3f)
{
    Tensor in(kLayerDim);
    for (std::size_t i = 0; i < kLayerDim; i++)
        in[i] = base + 0.01f * static_cast<float>(i % 7);
    return in;
}

TEST(LayerMath, InitIsDeterministic)
{
    LayerParams a = makeParams();
    LayerParams b = makeParams();
    EXPECT_TRUE(a.bitwiseEqual(b));
    EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(LayerMath, InitVariesWithIdentity)
{
    LayerParams a, b, c;
    initLayerParams(a, 5, 1, 1);
    initLayerParams(b, 5, 1, 2);
    initLayerParams(c, 6, 1, 1);
    EXPECT_FALSE(a.bitwiseEqual(b));
    EXPECT_FALSE(a.bitwiseEqual(c));
}

TEST(LayerMath, InitBounded)
{
    LayerParams p = makeParams();
    for (std::size_t i = 0; i < kLayerDim; i++) {
        EXPECT_LT(std::fabs(p.weight[i]), 0.5f);
        EXPECT_LT(std::fabs(p.bias[i]), 0.05f + 1e-6f);
    }
}

TEST(LayerMath, ForwardBounded)
{
    LayerParams p = makeParams();
    Tensor in = makeInput();
    Tensor out(kLayerDim);
    layerForward(p, in, out);
    ASSERT_EQ(out.size(), kLayerDim);
    for (std::size_t i = 0; i < kLayerDim; i++)
        EXPECT_LT(std::fabs(out[i]), 1.0f);
}

TEST(LayerMath, ForwardDeterministic)
{
    LayerParams p = makeParams();
    Tensor in = makeInput();
    Tensor out1(kLayerDim), out2(kLayerDim);
    layerForward(p, in, out1);
    layerForward(p, in, out2);
    EXPECT_TRUE(out1.bitwiseEqual(out2));
}

TEST(LayerMath, ForwardDependsOnMixedWeight)
{
    // The w_{i+1} coupling term must matter: changing weight[1]
    // changes output[0].
    LayerParams p = makeParams();
    Tensor in = makeInput();
    Tensor base(kLayerDim);
    layerForward(p, in, base);
    p.weight[1] += 0.25f;
    Tensor bumped(kLayerDim);
    layerForward(p, in, bumped);
    EXPECT_NE(base[0], bumped[0]);
}

TEST(LayerMath, BackwardMatchesNumericalGradient)
{
    LayerParams p = makeParams();
    Tensor in = makeInput();
    Tensor out(kLayerDim);
    layerForward(p, in, out);

    // Scalar objective: L = sum(out).
    Tensor gradOut(kLayerDim);
    gradOut.fill(1.0f);
    Tensor gradIn(kLayerDim);
    LayerGrads grads;
    layerBackward(p, in, gradOut, gradIn, grads);

    auto lossAt = [&](const LayerParams &params, const Tensor &input) {
        Tensor o(kLayerDim);
        layerForward(params, input, o);
        double total = 0.0;
        for (std::size_t i = 0; i < kLayerDim; i++)
            total += o[i];
        return total;
    };

    const float eps = 1e-3f;
    // Check a few weight gradients via central differences.
    for (std::size_t i : {std::size_t{0}, std::size_t{7},
                          std::size_t{kLayerDim - 1}}) {
        LayerParams plus = p, minus = p;
        plus.weight[i] += eps;
        minus.weight[i] -= eps;
        double numeric =
            (lossAt(plus, in) - lossAt(minus, in)) / (2.0 * eps);
        EXPECT_NEAR(grads.weight[i], numeric, 5e-3) << "weight " << i;
    }
    // Bias gradients.
    for (std::size_t i : {std::size_t{3}, std::size_t{40}}) {
        LayerParams plus = p, minus = p;
        plus.bias[i] += eps;
        minus.bias[i] -= eps;
        double numeric =
            (lossAt(plus, in) - lossAt(minus, in)) / (2.0 * eps);
        EXPECT_NEAR(grads.bias[i], numeric, 5e-3) << "bias " << i;
    }
    // Input gradients.
    for (std::size_t i : {std::size_t{0}, std::size_t{31}}) {
        Tensor plus = in, minus = in;
        plus[i] += eps;
        minus[i] -= eps;
        double numeric =
            (lossAt(p, plus) - lossAt(p, minus)) / (2.0 * eps);
        EXPECT_NEAR(gradIn[i], numeric, 5e-3) << "input " << i;
    }
}

TEST(LayerMath, GradsAccumulateAcrossCalls)
{
    LayerParams p = makeParams();
    Tensor in = makeInput();
    Tensor gradOut(kLayerDim);
    gradOut.fill(1.0f);
    Tensor gradIn(kLayerDim);
    LayerGrads once, twice;
    layerBackward(p, in, gradOut, gradIn, once);
    layerBackward(p, in, gradOut, gradIn, twice);
    layerBackward(p, in, gradOut, gradIn, twice);
    for (std::size_t i = 0; i < kLayerDim; i++)
        EXPECT_NEAR(twice.weight[i], 2.0f * once.weight[i], 1e-6f);
}

TEST(LayerMath, GradClearAndAccumulate)
{
    LayerGrads g;
    g.weight[0] = 2.0f;
    LayerGrads h;
    h.weight[0] = 3.0f;
    g.accumulate(h);
    EXPECT_EQ(g.weight[0], 5.0f);
    g.clear();
    EXPECT_EQ(g.weight[0], 0.0f);
}

TEST(LayerMath, ScalarCount)
{
    LayerParams p;
    EXPECT_EQ(p.scalarCount(), 2 * kLayerDim);
}

} // namespace
} // namespace naspipe
