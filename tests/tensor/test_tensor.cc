/**
 * @file
 * Tensor container tests.
 */

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace naspipe {
namespace {

TEST(Tensor, Rank1Construction)
{
    Tensor t(4);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.rows(), 4u);
    EXPECT_EQ(t.cols(), 1u);
    for (std::size_t i = 0; i < t.size(); i++)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, Rank2Construction)
{
    Tensor m(2, 3);
    EXPECT_EQ(m.size(), 6u);
    m.at(1, 2) = 5.0f;
    EXPECT_EQ(m.at(1, 2), 5.0f);
    EXPECT_EQ(m.data()[5], 5.0f);  // row-major
}

TEST(Tensor, FromVector)
{
    Tensor t(std::vector<float>{1.0f, 2.0f});
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, Fill)
{
    Tensor t(3);
    t.fill(7.5f);
    EXPECT_EQ(t[0], 7.5f);
    EXPECT_EQ(t[2], 7.5f);
}

TEST(Tensor, OutOfRangePanics)
{
    Tensor t(2);
    EXPECT_THROW(t[2], std::logic_error);
    Tensor m(2, 2);
    EXPECT_THROW(m.at(2, 0), std::logic_error);
    EXPECT_THROW(m.at(0, 2), std::logic_error);
}

TEST(Tensor, BitwiseEquality)
{
    Tensor a(std::vector<float>{1.0f, -0.0f});
    Tensor b(std::vector<float>{1.0f, -0.0f});
    Tensor c(std::vector<float>{1.0f, 0.0f});
    EXPECT_TRUE(a.bitwiseEqual(b));
    // -0.0f and 0.0f compare equal numerically but not bitwise:
    // exactly the distinction Definition 1 cares about.
    EXPECT_FALSE(a.bitwiseEqual(c));
}

TEST(Tensor, BitwiseEqualityDifferentSizes)
{
    Tensor a(2), b(3);
    EXPECT_FALSE(a.bitwiseEqual(b));
    Tensor e1, e2;
    EXPECT_TRUE(e1.bitwiseEqual(e2));
}

TEST(Tensor, ContentHashDiscriminates)
{
    Tensor a(std::vector<float>{1.0f, 2.0f});
    Tensor b(std::vector<float>{1.0f, 2.0f});
    Tensor c(std::vector<float>{2.0f, 1.0f});
    EXPECT_EQ(a.contentHash(), b.contentHash());
    EXPECT_NE(a.contentHash(), c.contentHash());
}

TEST(Tensor, ToStringTruncates)
{
    Tensor t(20);
    std::string s = t.toString(4);
    EXPECT_NE(s.find("Tensor[20]"), std::string::npos);
    EXPECT_NE(s.find("..."), std::string::npos);
}

} // namespace
} // namespace naspipe
