/**
 * @file
 * Loss function tests.
 */

#include <gtest/gtest.h>

#include "tensor/loss.h"

namespace naspipe {
namespace {

TEST(MseLoss, ZeroWhenEqual)
{
    Tensor a(std::vector<float>{1.0f, 2.0f});
    EXPECT_EQ(mseLoss(a, a), 0.0f);
}

TEST(MseLoss, KnownValue)
{
    Tensor pred(std::vector<float>{1.0f, 3.0f});
    Tensor target(std::vector<float>{0.0f, 1.0f});
    // ((1)^2 + (2)^2) / 2 = 2.5.
    EXPECT_NEAR(mseLoss(pred, target), 2.5f, 1e-6f);
}

TEST(MseLoss, GradMatchesNumerical)
{
    Tensor pred(std::vector<float>{0.5f, -0.25f, 1.0f});
    Tensor target(std::vector<float>{0.0f, 0.0f, 0.0f});
    Tensor grad(pred.size());
    mseLossGrad(pred, target, grad);
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < pred.size(); i++) {
        Tensor plus = pred, minus = pred;
        plus[i] += eps;
        minus[i] -= eps;
        float numeric =
            (mseLoss(plus, target) - mseLoss(minus, target)) /
            (2.0f * eps);
        EXPECT_NEAR(grad[i], numeric, 1e-3f);
    }
}

TEST(MseLoss, ShapeMismatchPanics)
{
    Tensor a(2), b(3);
    EXPECT_THROW(mseLoss(a, b), std::logic_error);
}

TEST(LossToScore, MonotoneDecreasing)
{
    EXPECT_GT(lossToScore(0.1, 24.0), lossToScore(0.5, 24.0));
    EXPECT_DOUBLE_EQ(lossToScore(0.0, 24.0), 24.0);
    EXPECT_NEAR(lossToScore(1.0, 24.0), 12.0, 1e-9);
}

TEST(LossToScore, NegativeLossPanics)
{
    EXPECT_THROW(lossToScore(-0.1, 24.0), std::logic_error);
}

} // namespace
} // namespace naspipe
