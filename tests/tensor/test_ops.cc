/**
 * @file
 * Deterministic tensor-op tests.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace naspipe {
namespace {

Tensor
vec(std::initializer_list<float> values)
{
    return Tensor(std::vector<float>(values));
}

TEST(Ops, Elementwise)
{
    Tensor a = vec({1, 2, 3});
    Tensor b = vec({4, 5, 6});
    Tensor out(3);
    ops::add(a, b, out);
    EXPECT_EQ(out[0], 5.0f);
    ops::sub(b, a, out);
    EXPECT_EQ(out[2], 3.0f);
    ops::mul(a, b, out);
    EXPECT_EQ(out[1], 10.0f);
}

TEST(Ops, AxpyAndScale)
{
    Tensor a = vec({1, 1});
    Tensor b = vec({2, 4});
    ops::axpy(0.5f, b, a);
    EXPECT_EQ(a[0], 2.0f);
    EXPECT_EQ(a[1], 3.0f);
    ops::scale(a, 2.0f);
    EXPECT_EQ(a[1], 6.0f);
}

TEST(Ops, TanhInPlace)
{
    Tensor a = vec({0.0f, 100.0f, -100.0f});
    ops::tanhInPlace(a);
    EXPECT_EQ(a[0], 0.0f);
    EXPECT_NEAR(a[1], 1.0f, 1e-6);
    EXPECT_NEAR(a[2], -1.0f, 1e-6);
}

TEST(Ops, SequentialSumIsLeftToRight)
{
    // With floats, (big + tiny) + -big != big + (tiny + -big); pin
    // the left-to-right order.
    Tensor t = vec({1e8f, 1.0f, -1e8f});
    // (1e8 + 1) == 1e8 in fp32 (the 1 is absorbed), then -1e8 => 0.
    EXPECT_EQ(ops::sum(t), 0.0f);
    Tensor u = vec({-1e8f, 1e8f, 1.0f});
    // (-1e8 + 1e8) == 0, then + 1 => exactly 1.
    EXPECT_EQ(ops::sum(u), 1.0f);
}

TEST(Ops, DotAndMeanSquare)
{
    Tensor a = vec({1, 2, 3});
    Tensor b = vec({4, 5, 6});
    EXPECT_EQ(ops::dot(a, b), 32.0f);
    EXPECT_NEAR(ops::meanSquare(a), 14.0f / 3.0f, 1e-6);
}

TEST(Ops, MaxAbsAndClamp)
{
    Tensor a = vec({-3, 1, 2});
    EXPECT_EQ(ops::maxAbs(a), 3.0f);
    ops::clamp(a, 1.5f);
    EXPECT_EQ(a[0], -1.5f);
    EXPECT_EQ(a[1], 1.0f);
    EXPECT_EQ(a[2], 1.5f);
}

TEST(Ops, Matvec)
{
    Tensor m(2, 3);
    // [[1 2 3], [4 5 6]]
    for (int i = 0; i < 6; i++)
        m.data()[static_cast<std::size_t>(i)] =
            static_cast<float>(i + 1);
    Tensor v = vec({1, 1, 1});
    Tensor out(2);
    ops::matvec(m, v, out);
    EXPECT_EQ(out[0], 6.0f);
    EXPECT_EQ(out[1], 15.0f);
}

TEST(Ops, MatvecTransposed)
{
    Tensor m(2, 3);
    for (int i = 0; i < 6; i++)
        m.data()[static_cast<std::size_t>(i)] =
            static_cast<float>(i + 1);
    Tensor v = vec({1, 1});
    Tensor out(3);
    ops::matvecTransposed(m, v, out);
    EXPECT_EQ(out[0], 5.0f);
    EXPECT_EQ(out[2], 9.0f);
}

TEST(Ops, OuterAccumulate)
{
    Tensor m(2, 2);
    Tensor u = vec({1, 2});
    Tensor v = vec({3, 4});
    ops::outerAccumulate(m, 1.0f, u, v);
    EXPECT_EQ(m.at(0, 0), 3.0f);
    EXPECT_EQ(m.at(1, 1), 8.0f);
    ops::outerAccumulate(m, -1.0f, u, v);
    EXPECT_EQ(m.at(1, 0), 0.0f);
}

TEST(Ops, ShapeMismatchPanics)
{
    Tensor a(2), b(3), out(2);
    EXPECT_THROW(ops::add(a, b, out), std::logic_error);
    EXPECT_THROW(ops::dot(a, b), std::logic_error);
    Tensor m(2, 3);
    Tensor v(2);
    EXPECT_THROW(ops::matvec(m, v, out), std::logic_error);
}

} // namespace
} // namespace naspipe
