/**
 * @file
 * SGD optimizer tests.
 */

#include <gtest/gtest.h>

#include "tensor/sgd.h"

namespace naspipe {
namespace {

TEST(Sgd, PlainStep)
{
    SgdConfig config;
    config.learningRate = 0.1f;
    SgdOptimizer opt(config);
    LayerParams p;
    p.weight.fill(1.0f);
    LayerGrads g;
    g.weight.fill(2.0f);
    opt.step(p, g);
    EXPECT_NEAR(p.weight[0], 0.8f, 1e-6f);
}

TEST(Sgd, BiasUpdatedToo)
{
    SgdConfig config;
    config.learningRate = 0.5f;
    SgdOptimizer opt(config);
    LayerParams p;
    p.bias.fill(1.0f);
    LayerGrads g;
    g.bias.fill(1.0f);
    opt.step(p, g);
    EXPECT_NEAR(p.bias[kLayerDim - 1], 0.5f, 1e-6f);
}

TEST(Sgd, ClippingLimitsUpdates)
{
    SgdConfig config;
    config.learningRate = 1.0f;
    config.clipNorm = 0.5f;
    SgdOptimizer opt(config);
    LayerParams p;
    LayerGrads g;
    g.weight.fill(10.0f);
    g.weight[1] = -10.0f;
    opt.step(p, g);
    EXPECT_NEAR(p.weight[0], -0.5f, 1e-6f);
    EXPECT_NEAR(p.weight[1], 0.5f, 1e-6f);
}

TEST(Sgd, MomentumAccumulatesVelocity)
{
    SgdConfig config;
    config.learningRate = 1.0f;
    config.momentum = 0.5f;
    SgdOptimizer opt(config);
    LayerParams p;
    LayerGrads g;
    g.weight.fill(1.0f);
    LayerGrads velocity;
    opt.step(p, g, velocity);
    EXPECT_NEAR(p.weight[0], -1.0f, 1e-6f);  // v = 1
    opt.step(p, g, velocity);
    EXPECT_NEAR(p.weight[0], -2.5f, 1e-6f);  // v = 1.5
}

TEST(Sgd, MomentumWithoutBufferPanics)
{
    SgdConfig config;
    config.momentum = 0.9f;
    SgdOptimizer opt(config);
    LayerParams p;
    LayerGrads g;
    EXPECT_THROW(opt.step(p, g), std::logic_error);
}

TEST(Sgd, InvalidHyperparametersPanic)
{
    SgdConfig bad;
    bad.learningRate = 0.0f;
    EXPECT_THROW(SgdOptimizer{bad}, std::logic_error);
    SgdConfig badMomentum;
    badMomentum.momentum = 1.0f;
    EXPECT_THROW(SgdOptimizer{badMomentum}, std::logic_error);
}

TEST(Sgd, DeterministicUpdates)
{
    auto run = [] {
        SgdOptimizer opt(SgdConfig{});
        LayerParams p;
        initLayerParams(p, 3, 0, 0);
        LayerGrads g;
        g.weight.fill(0.123f);
        for (int i = 0; i < 10; i++)
            opt.step(p, g);
        return p.contentHash();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace naspipe
