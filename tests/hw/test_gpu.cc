/**
 * @file
 * GPU device model tests.
 */

#include <gtest/gtest.h>

#include "hw/gpu.h"

namespace naspipe {
namespace {

TEST(Gpu, DefaultConfigMatchesTestbed)
{
    GpuConfig config;
    EXPECT_EQ(config.memoryBytes, 11ULL << 30);  // 2080Ti
    EXPECT_DOUBLE_EQ(config.pcieBytesPerSec, 15760.0 * 1e6);
}

TEST(Gpu, EnginesAreIndependent)
{
    Simulator sim;
    Gpu gpu(sim, 0, GpuConfig{});
    // Compute and DMA overlap: reserving one leaves others free.
    gpu.compute().reserve(ticksFromMs(10));
    Tick copyDone = gpu.h2d().transfer(1'000'000);
    EXPECT_LT(copyDone, ticksFromMs(10));
}

TEST(Gpu, H2dAndD2hAreSeparateEngines)
{
    Simulator sim;
    Gpu gpu(sim, 0, GpuConfig{});
    Tick up = gpu.h2d().transfer(100'000'000);
    Tick down = gpu.d2h().transfer(100'000'000);
    // Same size, both start at 0: they complete simultaneously.
    EXPECT_EQ(up, down);
}

TEST(Gpu, AluUtilizationOverWindow)
{
    Simulator sim;
    Gpu gpu(sim, 3, GpuConfig{});
    gpu.compute().reserve(ticksFromSec(1.0));
    EXPECT_DOUBLE_EQ(gpu.aluUtilization(2.0), 0.5);
    EXPECT_EQ(gpu.id(), 3);
}

TEST(Gpu, ResetClearsEngines)
{
    Simulator sim;
    Gpu gpu(sim, 0, GpuConfig{});
    gpu.compute().reserve(100);
    gpu.h2d().transfer(1000);
    gpu.reset();
    EXPECT_EQ(gpu.compute().freeAt(), 0u);
    EXPECT_DOUBLE_EQ(gpu.aluUtilization(1.0), 0.0);
}

TEST(Gpu, PcieTransferTimeMatchesTable5)
{
    // A Conv 3x1's 27.7 MB parameters should swap in ~1.76 ms over
    // PCIe 3.0 x16 (Table 5).
    Simulator sim;
    Gpu gpu(sim, 0, GpuConfig{});
    std::uint64_t bytes = 27'737'600;  // 1.76 ms * 15760 MB/s
    Tick done = gpu.h2d().transfer(bytes);
    EXPECT_NEAR(ticksToMs(done), 1.76, 0.05);
}

} // namespace
} // namespace naspipe
