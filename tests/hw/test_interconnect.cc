/**
 * @file
 * Stage link tests.
 */

#include <gtest/gtest.h>

#include "hw/interconnect.h"

namespace naspipe {
namespace {

TEST(StageLink, IntraHostIsFast)
{
    Simulator sim;
    InterconnectConfig config;
    StageLink link(sim, 0, 1, LinkType::IntraHostPcie, config);
    // 11 MB over 11 GB/s = 1 ms (plus small latency).
    Tick done = link.send(11'000'000);
    EXPECT_NEAR(ticksToMs(done), 1.0, 0.1);
}

TEST(StageLink, CrossHostIsSlow)
{
    Simulator sim;
    InterconnectConfig config;
    StageLink link(sim, 3, 4, LinkType::CrossHostEther, config);
    // 8.67 MB over 867 MB/s = 10 ms + 0.17 ms ping.
    Tick done = link.send(8'670'000);
    EXPECT_NEAR(ticksToMs(done), 10.17, 0.2);
}

TEST(StageLink, MessagesSerialize)
{
    Simulator sim;
    InterconnectConfig config;
    config.intraHostLatency = 0;
    StageLink link(sim, 0, 1, LinkType::IntraHostPcie, config);
    Tick first = link.send(11'000'000);
    Tick second = link.send(11'000'000);
    EXPECT_EQ(second, 2 * first);
}

TEST(StageLink, SendFromQueues)
{
    Simulator sim;
    InterconnectConfig config;
    StageLink link(sim, 0, 1, LinkType::IntraHostPcie, config);
    Tick wire = link.messageTime(1000);
    Tick done = link.sendFrom(ticksFromMs(5), 1000);
    EXPECT_EQ(done, ticksFromMs(5) + wire);
}

TEST(StageLink, Endpoints)
{
    Simulator sim;
    StageLink link(sim, 2, 3, LinkType::IntraHostPcie,
                   InterconnectConfig{});
    EXPECT_EQ(link.fromStage(), 2);
    EXPECT_EQ(link.toStage(), 3);
    EXPECT_EQ(link.type(), LinkType::IntraHostPcie);
}

TEST(LinkTypeName, Named)
{
    EXPECT_STREQ(linkTypeName(LinkType::IntraHostPcie), "pcie-p2p");
    EXPECT_STREQ(linkTypeName(LinkType::CrossHostEther), "ethernet");
}

} // namespace
} // namespace naspipe
