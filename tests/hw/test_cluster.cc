/**
 * @file
 * Cluster topology tests.
 */

#include <gtest/gtest.h>

#include "hw/cluster.h"

namespace naspipe {
namespace {

ClusterConfig
config8()
{
    ClusterConfig c;
    c.numStages = 8;
    c.gpusPerHost = 4;
    return c;
}

TEST(Cluster, HostAssignmentFillsInOrder)
{
    Simulator sim;
    Cluster cluster(sim, config8());
    EXPECT_EQ(cluster.hostOf(0), 0);
    EXPECT_EQ(cluster.hostOf(3), 0);
    EXPECT_EQ(cluster.hostOf(4), 1);
    EXPECT_EQ(cluster.hostOf(7), 1);
}

TEST(Cluster, LinksWithinHostArePcie)
{
    Simulator sim;
    Cluster cluster(sim, config8());
    EXPECT_EQ(cluster.link(0, 1).type(), LinkType::IntraHostPcie);
    EXPECT_EQ(cluster.link(2, 3).type(), LinkType::IntraHostPcie);
}

TEST(Cluster, LinkAcrossHostsIsEthernet)
{
    Simulator sim;
    Cluster cluster(sim, config8());
    EXPECT_EQ(cluster.link(3, 4).type(), LinkType::CrossHostEther);
    EXPECT_EQ(cluster.link(4, 3).type(), LinkType::CrossHostEther);
}

TEST(Cluster, ForwardAndBackwardLinksAreDistinct)
{
    Simulator sim;
    Cluster cluster(sim, config8());
    StageLink &fwd = cluster.link(0, 1);
    StageLink &bwd = cluster.link(1, 0);
    EXPECT_NE(&fwd, &bwd);
    EXPECT_EQ(fwd.fromStage(), 0);
    EXPECT_EQ(bwd.fromStage(), 1);
}

TEST(Cluster, NonAdjacentLinkPanics)
{
    Simulator sim;
    Cluster cluster(sim, config8());
    EXPECT_THROW(cluster.link(0, 2), std::logic_error);
    EXPECT_THROW(cluster.link(5, 5), std::logic_error);
}

TEST(Cluster, GpuAccessors)
{
    Simulator sim;
    Cluster cluster(sim, config8());
    EXPECT_EQ(cluster.numStages(), 8);
    EXPECT_EQ(cluster.gpu(5).id(), 5);
    EXPECT_THROW(cluster.gpu(8), std::logic_error);
}

TEST(Cluster, TotalAluUtilizationSums)
{
    Simulator sim;
    Cluster cluster(sim, config8());
    cluster.gpu(0).compute().reserve(ticksFromSec(1.0));
    cluster.gpu(1).compute().reserve(ticksFromSec(0.5));
    EXPECT_DOUBLE_EQ(cluster.totalAluUtilization(1.0), 1.5);
}

TEST(Cluster, MeanBubbleRatio)
{
    Simulator sim;
    ClusterConfig cc = config8();
    cc.numStages = 2;
    Cluster cluster(sim, cc);
    // GPU 0: busy 1 of [0,2] active window => bubble 0.5.
    cluster.gpu(0).compute().reserveFrom(0, ticksFromSec(1.0));
    cluster.gpu(0).compute().reserveFrom(ticksFromSec(2.0), 0);
    // reserveFrom with 0 duration records nothing; add real work.
    cluster.gpu(0).compute().reserveFrom(ticksFromSec(2.0),
                                         ticksFromSec(0.0001));
    // GPU 1: fully busy => bubble 0.
    cluster.gpu(1).compute().reserve(ticksFromSec(1.0));
    double bubble = cluster.meanBubbleRatio();
    EXPECT_GT(bubble, 0.2);
    EXPECT_LT(bubble, 0.3);
}

TEST(Cluster, SixteenGpusSpanFourHosts)
{
    Simulator sim;
    ClusterConfig cc = config8();
    cc.numStages = 16;
    Cluster cluster(sim, cc);
    EXPECT_EQ(cluster.hostOf(15), 3);
    EXPECT_EQ(cluster.link(7, 8).type(), LinkType::CrossHostEther);
    EXPECT_EQ(cluster.link(8, 9).type(), LinkType::IntraHostPcie);
}

TEST(Cluster, HostMemoryDefault)
{
    Simulator sim;
    Cluster cluster(sim, config8());
    EXPECT_EQ(cluster.hostMemoryBytes(), 64ULL << 30);
}

} // namespace
} // namespace naspipe
