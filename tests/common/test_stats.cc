/**
 * @file
 * Statistics primitive tests.
 */

#include <gtest/gtest.h>

#include "common/stats.h"

namespace naspipe {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c("events");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(c.name(), "events");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Summary, BasicMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Summary, EmptyIsZero)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Summary, Merge)
{
    Summary a, b;
    a.add(1.0);
    a.add(5.0);
    b.add(-2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bucket 0
    h.add(9.5);   // bucket 9
    h.add(-1.0);  // underflow
    h.add(11.0);  // overflow
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, QuantileMonotone)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; i++)
        h.add(static_cast<double>(i) + 0.5);
    double q25 = h.quantile(0.25);
    double q50 = h.quantile(0.5);
    double q90 = h.quantile(0.9);
    EXPECT_LE(q25, q50);
    EXPECT_LE(q50, q90);
    EXPECT_NEAR(q50, 50.0, 2.0);
    EXPECT_NEAR(q90, 90.0, 2.0);
}

TEST(UtilizationTracker, BusyAccumulates)
{
    UtilizationTracker u;
    u.addBusy(0.0, 1.0);
    u.addBusy(2.0, 3.0);
    EXPECT_DOUBLE_EQ(u.busyTime(), 2.0);
    EXPECT_DOUBLE_EQ(u.firstStart(), 0.0);
    EXPECT_DOUBLE_EQ(u.lastEnd(), 3.0);
    EXPECT_EQ(u.intervals(), 2u);
}

TEST(UtilizationTracker, UtilizationOverWindow)
{
    UtilizationTracker u;
    u.addBusy(0.0, 2.0);
    EXPECT_DOUBLE_EQ(u.utilization(4.0), 0.5);
    EXPECT_DOUBLE_EQ(u.utilization(2.0), 1.0);
    EXPECT_DOUBLE_EQ(u.utilization(0.0), 0.0);
}

TEST(UtilizationTracker, BubbleRatio)
{
    UtilizationTracker u;
    // Busy 1s of a 4s active window => bubble 0.75.
    u.addBusy(1.0, 1.5);
    u.addBusy(4.5, 5.0);
    EXPECT_DOUBLE_EQ(u.bubbleRatio(), 0.75);
}

TEST(UtilizationTracker, FullyBusyHasNoBubble)
{
    UtilizationTracker u;
    u.addBusy(0.0, 1.0);
    u.addBusy(1.0, 2.0);
    EXPECT_DOUBLE_EQ(u.bubbleRatio(), 0.0);
}

TEST(UtilizationTracker, EmptyTracker)
{
    UtilizationTracker u;
    EXPECT_DOUBLE_EQ(u.bubbleRatio(), 0.0);
    EXPECT_DOUBLE_EQ(u.utilization(10.0), 0.0);
}

TEST(RatioStat, Rates)
{
    RatioStat r;
    EXPECT_DOUBLE_EQ(r.rate(), 0.0);
    r.hit(9);
    r.miss();
    EXPECT_DOUBLE_EQ(r.rate(), 0.9);
    EXPECT_EQ(r.total(), 10u);
    r.reset();
    EXPECT_EQ(r.total(), 0u);
}

} // namespace
} // namespace naspipe
