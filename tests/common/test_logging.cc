/**
 * @file
 * Logging tests: capture, levels, panic/fatal semantics.
 */

#include <gtest/gtest.h>

#include "common/logging.h"

namespace naspipe {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        LogConfig::instance().capture(true);
        LogConfig::instance().threshold(LogLevel::Inform);
    }

    void TearDown() override
    {
        LogConfig::instance().capture(false);
        LogConfig::instance().threshold(LogLevel::Inform);
    }
};

TEST_F(LoggingTest, InformIsCaptured)
{
    inform("hello ", 42);
    std::string out = LogConfig::instance().takeCaptured();
    EXPECT_EQ(out, "info: hello 42\n");
}

TEST_F(LoggingTest, WarnIsCaptured)
{
    warn("watch out");
    std::string out = LogConfig::instance().takeCaptured();
    EXPECT_EQ(out, "warn: watch out\n");
}

TEST_F(LoggingTest, DebugSuppressedByDefault)
{
    debugLog("noise");
    EXPECT_TRUE(LogConfig::instance().takeCaptured().empty());
}

TEST_F(LoggingTest, DebugVisibleWhenEnabled)
{
    LogConfig::instance().threshold(LogLevel::Debug);
    debugLog("signal");
    EXPECT_EQ(LogConfig::instance().takeCaptured(),
              "debug: signal\n");
}

TEST_F(LoggingTest, ThresholdSuppressesLowerLevels)
{
    LogConfig::instance().threshold(LogLevel::Warn);
    inform("hidden");
    EXPECT_TRUE(LogConfig::instance().takeCaptured().empty());
    warn("shown");
    EXPECT_FALSE(LogConfig::instance().takeCaptured().empty());
}

TEST_F(LoggingTest, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("internal bug ", 1), std::logic_error);
    std::string out = LogConfig::instance().takeCaptured();
    EXPECT_NE(out.find("panic: internal bug 1"), std::string::npos);
}

TEST_F(LoggingTest, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad config"), std::runtime_error);
    std::string out = LogConfig::instance().takeCaptured();
    EXPECT_NE(out.find("fatal: bad config"), std::string::npos);
}

TEST_F(LoggingTest, AssertMacroPassesOnTrue)
{
    NASPIPE_ASSERT(1 + 1 == 2, "never shown");
    EXPECT_TRUE(LogConfig::instance().takeCaptured().empty());
}

TEST_F(LoggingTest, AssertMacroPanicsOnFalse)
{
    EXPECT_THROW(NASPIPE_ASSERT(false, "broken ", 7),
                 std::logic_error);
}

TEST_F(LoggingTest, TakeCapturedClearsBuffer)
{
    inform("one");
    LogConfig::instance().takeCaptured();
    EXPECT_TRUE(LogConfig::instance().takeCaptured().empty());
}

TEST(LogLevelName, AllLevelsNamed)
{
    EXPECT_STREQ(logLevelName(LogLevel::Panic), "panic");
    EXPECT_STREQ(logLevelName(LogLevel::Fatal), "fatal");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "warn");
    EXPECT_STREQ(logLevelName(LogLevel::Inform), "info");
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "debug");
}

} // namespace
} // namespace naspipe
