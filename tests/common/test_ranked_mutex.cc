/**
 * @file
 * RankedMutex / lock-order witness unit tests.
 *
 * The witness tests run in two personalities: with the witness
 * compiled in (Debug, TSan, or -DNASPIPE_LOCK_WITNESS=ON) a
 * violating acquisition must report both offending ranks and the
 * held stack; with it compiled out (plain Release) the same
 * acquisitions must be silent no-ops — the wrappers still provide
 * mutual exclusion, and that is all. lockWitnessEnabled() selects
 * the expectations, so one test binary is correct in every build
 * mode.
 *
 * Violating acquisitions here use lock()/unlock() directly, never
 * RAII guards: the static lock pass (tools/analysis/lock_pass.*)
 * tracks guard objects, and these deliberately-bad sequences are the
 * runtime witness's job, not new repo-wide findings.
 */

#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace naspipe {
namespace {

std::vector<std::string> &
violations()
{
    static std::vector<std::string> log;
    return log;
}

void
captureViolation(const std::string &message)
{
    violations().push_back(message);
}

class RankedMutexTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        violations().clear();
        lockdebug::setViolationHandler(&captureViolation);
    }

    void
    TearDown() override
    {
        lockdebug::setViolationHandler(nullptr);
        violations().clear();
    }
};

TEST_F(RankedMutexTest, RankNamesAndLevelsAreStable)
{
    const LockRank ranks[] = {
        LockRank::ServeClient,       LockRank::ServePoolIncident,
        LockRank::ExecIncident,      LockRank::FaultWatchdog,
        LockRank::ExecQueue,         LockRank::ExecWorkerSignal,
        LockRank::ExecGateTable,     LockRank::ExecGateWait,
        LockRank::TrainContext,      LockRank::TrainAccessLog,
        LockRank::VerifyOracle,
    };
    int previous = 0;
    for (LockRank rank : ranks) {
        EXPECT_STRNE(lockRankName(rank), "unknown");
        EXPECT_GT(static_cast<int>(rank), previous)
            << "ranks must ascend outermost to innermost";
        previous = static_cast<int>(rank);
    }
}

TEST_F(RankedMutexTest, AscendingAcquisitionIsClean)
{
    RankedMutex rmtQueueMu{LockRank::ExecQueue};
    RankedMutex rmtGateWaitMu{LockRank::ExecGateWait};
    rmtQueueMu.lock();
    rmtGateWaitMu.lock();
    if (lockWitnessEnabled()) {
        auto held = lockdebug::heldRanks();
        ASSERT_EQ(held.size(), 2u);
        EXPECT_EQ(held[0], LockRank::ExecQueue);
        EXPECT_EQ(held[1], LockRank::ExecGateWait);
    }
    rmtGateWaitMu.unlock();
    rmtQueueMu.unlock();
    EXPECT_TRUE(violations().empty());
    EXPECT_TRUE(lockdebug::heldRanks().empty());
}

TEST_F(RankedMutexTest, DescendingAcquisitionTripsTheWitness)
{
    RankedMutex rmtQueueMu{LockRank::ExecQueue};
    RankedMutex rmtGateWaitMu{LockRank::ExecGateWait};
    rmtGateWaitMu.lock();
    rmtQueueMu.lock();
    rmtQueueMu.unlock();
    rmtGateWaitMu.unlock();
    if (!lockWitnessEnabled()) {
        EXPECT_TRUE(violations().empty())
            << "witness must be compiled out in plain Release";
        return;
    }
    ASSERT_EQ(violations().size(), 1u);
    // The report must name both offending ranks and the held stack.
    EXPECT_NE(violations()[0].find("exec.queue"), std::string::npos)
        << violations()[0];
    EXPECT_NE(violations()[0].find("exec.gate_wait"),
              std::string::npos)
        << violations()[0];
    EXPECT_NE(violations()[0].find("held stack"), std::string::npos)
        << violations()[0];
}

TEST_F(RankedMutexTest, EqualRankNestingTripsTheWitness)
{
    RankedMutex rmtQueueMu{LockRank::ExecQueue};
    RankedMutex rmtQueueTwinMu{LockRank::ExecQueue};
    rmtQueueMu.lock();
    rmtQueueTwinMu.lock();
    rmtQueueTwinMu.unlock();
    rmtQueueMu.unlock();
    if (lockWitnessEnabled())
        EXPECT_EQ(violations().size(), 1u);
    else
        EXPECT_TRUE(violations().empty());
}

TEST_F(RankedMutexTest, ReleaseBeforeReacquireIsClean)
{
    RankedMutex rmtQueueMu{LockRank::ExecQueue};
    RankedMutex rmtGateWaitMu{LockRank::ExecGateWait};
    // Descending order is fine when the holds never overlap.
    rmtGateWaitMu.lock();
    rmtGateWaitMu.unlock();
    rmtQueueMu.lock();
    rmtQueueMu.unlock();
    EXPECT_TRUE(violations().empty());
    EXPECT_TRUE(lockdebug::heldRanks().empty());
}

TEST_F(RankedMutexTest, SharedAcquisitionsObeyTheSameOrder)
{
    RankedSharedMutex rmtTableMu{LockRank::ExecGateTable};
    RankedMutex rmtGateWaitMu{LockRank::ExecGateWait};
    // Ascending: exclusive table, then wait lock — clean.
    rmtTableMu.lock();
    rmtGateWaitMu.lock();
    rmtGateWaitMu.unlock();
    rmtTableMu.unlock();
    EXPECT_TRUE(violations().empty());
    // Descending with a *shared* acquisition still violates: a
    // reader blocked behind a writer participates in wait cycles.
    rmtGateWaitMu.lock();
    rmtTableMu.lock_shared();
    rmtTableMu.unlock_shared();
    rmtGateWaitMu.unlock();
    if (lockWitnessEnabled())
        EXPECT_EQ(violations().size(), 1u);
    else
        EXPECT_TRUE(violations().empty());
}

TEST_F(RankedMutexTest, FailedTryLockLeavesTheStackClean)
{
    if (!lockWitnessEnabled())
        GTEST_SKIP() << "witness compiled out";
    RankedMutex rmtQueueMu{LockRank::ExecQueue};
    rmtQueueMu.lock();
    std::thread other([&] {
        EXPECT_FALSE(rmtQueueMu.try_lock());
        EXPECT_TRUE(lockdebug::heldRanks().empty())
            << "failed try_lock must not linger on the held stack";
    });
    other.join();
    rmtQueueMu.unlock();
    EXPECT_TRUE(lockdebug::heldRanks().empty());
}

TEST_F(RankedMutexTest, MutualExclusionHoldsInEveryBuildMode)
{
    RankedMutex rmtQueueMu{LockRank::ExecQueue};
    int counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; t++) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; i++) {
                rmtQueueMu.lock();
                counter++;
                rmtQueueMu.unlock();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(counter, 4000);
    EXPECT_TRUE(violations().empty());
}

TEST_F(RankedMutexTest, HeldStackIsPerThread)
{
    if (!lockWitnessEnabled())
        GTEST_SKIP() << "witness compiled out";
    RankedMutex rmtQueueMu{LockRank::ExecQueue};
    rmtQueueMu.lock();
    std::thread other([] {
        EXPECT_TRUE(lockdebug::heldRanks().empty())
            << "another thread's holds must not leak over";
    });
    other.join();
    rmtQueueMu.unlock();
}

using RankedMutexDeathTest = RankedMutexTest;

TEST_F(RankedMutexDeathTest, DefaultHandlerAbortsWithBothRanks)
{
    if (!lockWitnessEnabled())
        GTEST_SKIP() << "witness compiled out";
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH(
        {
            naspipe::lockdebug::setViolationHandler(nullptr);
            RankedMutex rmtQueueMu{LockRank::ExecQueue};
            RankedMutex rmtGateWaitMu{LockRank::ExecGateWait};
            rmtGateWaitMu.lock();
            rmtQueueMu.lock();
        },
        "rank-order violation.*exec\\.queue.*exec\\.gate_wait");
}

} // namespace
} // namespace naspipe
