/**
 * @file
 * String helper tests.
 */

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace naspipe {
namespace {

TEST(FormatFixed, Digits)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(3.14159, 0), "3");
    EXPECT_EQ(formatFixed(-1.5, 1), "-1.5");
}

TEST(FormatPercent, Basic)
{
    EXPECT_EQ(formatPercent(0.943), "94.3%");
    EXPECT_EQ(formatPercent(1.0, 0), "100%");
}

TEST(FormatBytes, Units)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(1024), "1K");
    EXPECT_EQ(formatBytes(1536), "1.5K");
    EXPECT_EQ(formatBytes(474ULL << 20), "474M");
    EXPECT_EQ(formatBytes((57ULL << 30) + (820ULL << 20)), "57.8G");
}

TEST(FormatFactor, Basic)
{
    EXPECT_EQ(formatFactor(7.81), "7.8x");
    EXPECT_EQ(formatFactor(0.87, 2), "0.87x");
}

TEST(SplitString, Basics)
{
    auto parts = splitString("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
}

TEST(SplitString, NoSeparator)
{
    auto parts = splitString("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(TrimString, Whitespace)
{
    EXPECT_EQ(trimString("  x y  "), "x y");
    EXPECT_EQ(trimString("\t\n z"), "z");
    EXPECT_EQ(trimString("   "), "");
    EXPECT_EQ(trimString(""), "");
}

TEST(Padding, LeftAndRight)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
    EXPECT_EQ(padRight("abcd", 2), "abcd");
}

TEST(StartsWith, Basic)
{
    EXPECT_TRUE(startsWith("NLP.c1", "NLP"));
    EXPECT_FALSE(startsWith("CV.c1", "NLP"));
    EXPECT_TRUE(startsWith("x", ""));
    EXPECT_FALSE(startsWith("", "x"));
}

TEST(JoinStrings, Basic)
{
    EXPECT_EQ(joinStrings({"a", "b", "c"}, "-"), "a-b-c");
    EXPECT_EQ(joinStrings({}, "-"), "");
    EXPECT_EQ(joinStrings({"solo"}, ", "), "solo");
}

} // namespace
} // namespace naspipe
