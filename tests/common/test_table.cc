/**
 * @file
 * Text-table rendering tests.
 */

#include <gtest/gtest.h>

#include "common/table.h"

namespace naspipe {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"Name", "Value"});
    t.addRow({"alpha", "1.5"});
    t.addRow({"beta", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NumericCellsRightAligned)
{
    TextTable t({"K", "V"});
    t.addRow({"x", "1"});
    t.addRow({"y", "100"});
    std::string out = t.render();
    // "1" must be padded to the width of "100": appears as "  1".
    EXPECT_NE(out.find("  1"), std::string::npos);
}

TEST(TextTable, SeparatorInserted)
{
    TextTable t({"A"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string out = t.render();
    // Header separator + mid separator = at least two dash lines.
    std::size_t first = out.find("-\n");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(out.find("-\n", first + 2), std::string::npos);
}

TEST(TextTable, RowWidthMismatchPanics)
{
    TextTable t({"A", "B"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(TextTable, WideCellsExpandColumn)
{
    TextTable t({"H"});
    t.addRow({"a-very-long-cell"});
    std::string out = t.render();
    EXPECT_NE(out.find("a-very-long-cell"), std::string::npos);
}

TEST(TextTable, PercentAndFactorCountAsNumeric)
{
    TextTable t({"A", "B"});
    t.addRow({"94.3%", "7.8x"});
    // Just ensure rendering succeeds and content survives.
    std::string out = t.render();
    EXPECT_NE(out.find("94.3%"), std::string::npos);
    EXPECT_NE(out.find("7.8x"), std::string::npos);
}

} // namespace
} // namespace naspipe
