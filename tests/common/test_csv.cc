/**
 * @file
 * CSV writer tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.h"

namespace naspipe {
namespace {

TEST(CsvWriter, BasicDocument)
{
    CsvWriter w({"time", "loss"});
    w.addRow({"0.5", "1.25"});
    w.addRow({"1.0", "1.10"});
    EXPECT_EQ(w.render(), "time,loss\n0.5,1.25\n1.0,1.10\n");
    EXPECT_EQ(w.rows(), 2u);
}

TEST(CsvWriter, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvWriter, EscapedCellsRoundTripInDocument)
{
    CsvWriter w({"k", "v"});
    w.addRow({"x,y", "z"});
    EXPECT_EQ(w.render(), "k,v\n\"x,y\",z\n");
}

TEST(CsvWriter, RowWidthMismatchPanics)
{
    CsvWriter w({"a", "b"});
    EXPECT_THROW(w.addRow({"1"}), std::logic_error);
}

TEST(CsvWriter, WritesFile)
{
    CsvWriter w({"x"});
    w.addRow({"1"});
    std::string path = ::testing::TempDir() + "naspipe_csv_test.csv";
    ASSERT_TRUE(w.writeFile(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x");
    std::getline(in, line);
    EXPECT_EQ(line, "1");
    std::remove(path.c_str());
}

TEST(CsvWriter, WriteFileFailsOnBadPath)
{
    CsvWriter w({"x"});
    EXPECT_FALSE(w.writeFile("/nonexistent-dir/impossible.csv"));
}

} // namespace
} // namespace naspipe
