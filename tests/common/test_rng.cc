/**
 * @file
 * Deterministic RNG tests: fixed outputs, stream independence,
 * distribution sanity.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"

namespace naspipe {
namespace {

TEST(SplitMix64, KnownSequence)
{
    // Reference values from the SplitMix64 reference implementation
    // with seed 1234567.
    SplitMix64 sm(1234567);
    EXPECT_EQ(sm.next(), 6457827717110365317ULL);
    EXPECT_EQ(sm.next(), 3203168211198807973ULL);
    EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(SplitMix64, DifferentSeedsDiffer)
{
    SplitMix64 a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicAcrossInstances)
{
    Xoshiro256StarStar a(42), b(42);
    for (int i = 0; i < 1000; i++)
        ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
}

TEST(Xoshiro, SeedSensitivity)
{
    Xoshiro256StarStar a(42), b(43);
    EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, NextBelowRespectsBound)
{
    Xoshiro256StarStar rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; i++)
            ASSERT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Xoshiro, NextBelowCoversRange)
{
    Xoshiro256StarStar rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; i++)
        seen.insert(rng.nextBelow(6));
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Xoshiro, NextBelowRoughlyUniform)
{
    Xoshiro256StarStar rng(99);
    std::map<std::uint64_t, int> counts;
    const int draws = 60000;
    for (int i = 0; i < draws; i++)
        counts[rng.nextBelow(6)]++;
    for (const auto &[value, count] : counts) {
        EXPECT_NEAR(count, draws / 6, draws / 60)
            << "value " << value;
    }
}

TEST(Xoshiro, NextInRangeInclusive)
{
    Xoshiro256StarStar rng(5);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; i++) {
        std::int64_t v = rng.nextInRange(-2, 2);
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        sawLo |= v == -2;
        sawHi |= v == 2;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Xoshiro, DoublesInUnitInterval)
{
    Xoshiro256StarStar rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; i++) {
        double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, GaussianMoments)
{
    Xoshiro256StarStar rng(13);
    double sum = 0.0, sumSq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; i++) {
        double v = rng.nextGaussian();
        sum += v;
        sumSq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(Xoshiro, JumpProducesDisjointStream)
{
    Xoshiro256StarStar a(21);
    Xoshiro256StarStar b(21);
    b.jump();
    // The jumped stream must differ immediately and not collide over
    // a modest window.
    std::set<std::uint64_t> fromA;
    for (int i = 0; i < 100; i++)
        fromA.insert(a.next());
    for (int i = 0; i < 100; i++)
        EXPECT_FALSE(fromA.count(b.next()));
}

TEST(Philox, CounterDeterminism)
{
    Philox4x32 p(777);
    auto block1 = p.block(42);
    auto block2 = p.block(42);
    EXPECT_EQ(block1, block2);
}

TEST(Philox, RandomAccessIndependentOfOrder)
{
    Philox4x32 p(777);
    auto late = p.block(1000);
    auto early = p.block(1);
    Philox4x32 q(777);
    EXPECT_EQ(q.block(1), early);
    EXPECT_EQ(q.block(1000), late);
}

TEST(Philox, KeySensitivity)
{
    Philox4x32 a(1), b(2);
    EXPECT_NE(a.block(0), b.block(0));
}

TEST(Philox, CounterSensitivity)
{
    Philox4x32 p(9);
    EXPECT_NE(p.block(0), p.block(1));
}

TEST(Philox, UniformFloatRange)
{
    Philox4x32 p(31337);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < 10000; i++) {
        float v = p.uniformFloat(i);
        ASSERT_GE(v, 0.0f);
        ASSERT_LT(v, 1.0f);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(DeriveSeed, TagSeparation)
{
    std::uint64_t base = 7;
    EXPECT_NE(deriveSeed(base, "sampler"), deriveSeed(base, "data"));
    EXPECT_NE(deriveSeed(base, std::uint64_t{0}),
              deriveSeed(base, std::uint64_t{1}));
    // Same inputs, same output.
    EXPECT_EQ(deriveSeed(base, "sampler"), deriveSeed(base, "sampler"));
}

TEST(DeriveSeed, ParentSeparation)
{
    EXPECT_NE(deriveSeed(1, "x"), deriveSeed(2, "x"));
}

} // namespace
} // namespace naspipe
