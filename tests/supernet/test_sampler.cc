/**
 * @file
 * Sampler tests: determinism, distributions, evolution behaviour.
 */

#include <gtest/gtest.h>

#include <map>

#include "supernet/sampler.h"

namespace naspipe {
namespace {

TEST(UniformSampler, SequentialIds)
{
    SearchSpace tiny = makeTinySpace();
    UniformSampler s(tiny, 7);
    EXPECT_EQ(s.next().id(), 0);
    EXPECT_EQ(s.next().id(), 1);
    EXPECT_EQ(s.produced(), 2);
}

TEST(UniformSampler, DeterministicGivenSeed)
{
    SearchSpace tiny = makeTinySpace();
    UniformSampler a(tiny, 42), b(tiny, 42);
    for (int i = 0; i < 50; i++)
        ASSERT_EQ(a.next(), b.next());
}

TEST(UniformSampler, SeedChangesSequence)
{
    SearchSpace tiny = makeTinySpace();
    UniformSampler a(tiny, 1), b(tiny, 2);
    bool anyDiff = false;
    for (int i = 0; i < 10; i++)
        anyDiff |= !(a.next() == b.next());
    EXPECT_TRUE(anyDiff);
}

TEST(UniformSampler, ChoicesWithinRange)
{
    SearchSpace tiny = makeTinySpace();
    UniformSampler s(tiny, 3);
    for (int i = 0; i < 100; i++) {
        Subnet sn = s.next();
        for (int b = 0; b < sn.size(); b++) {
            ASSERT_GE(sn.choice(b), 0);
            ASSERT_LT(sn.choice(b), tiny.choicesPerBlock());
        }
    }
}

TEST(UniformSampler, RoughlyUniformWithoutSkip)
{
    SearchSpace tiny = makeTinySpace();
    UniformSampler s(tiny, 9);
    std::map<int, int> counts;
    const int draws = 3000;
    for (int i = 0; i < draws; i++)
        counts[s.next().choice(0)]++;
    for (int c = 0; c < 3; c++)
        EXPECT_NEAR(counts[c], draws / 3, draws / 15) << "choice " << c;
}

TEST(UniformSampler, SkipMassRespected)
{
    SearchSpace space("s", SpaceFamily::Nlp, 6, 8, 3, 0.4);
    UniformSampler s(space, 5);
    int skips = 0;
    const int draws = 4000;
    for (int i = 0; i < draws; i++) {
        Subnet sn = s.next();
        for (int b = 0; b < sn.size(); b++)
            skips += sn.choice(b) == 0;
    }
    double frac =
        static_cast<double>(skips) / (draws * space.numBlocks());
    EXPECT_NEAR(frac, 0.4, 0.02);
}

TEST(EvolutionSampler, WarmupThenMutation)
{
    SearchSpace tiny = makeTinySpace();
    EvolutionSampler s(tiny, 7, /*population=*/4, /*tournament=*/2);
    std::vector<Subnet> warmup;
    for (int i = 0; i < 4; i++)
        warmup.push_back(s.next());
    // After warm-up, children are one-block mutations of members.
    for (int i = 0; i < 20; i++) {
        Subnet child = s.next();
        // A mutation differs from *some* member in exactly one block
        // is hard to assert against aging; assert validity instead.
        for (int b = 0; b < child.size(); b++) {
            ASSERT_GE(child.choice(b), 0);
            ASSERT_LT(child.choice(b), tiny.choicesPerBlock());
        }
    }
    EXPECT_EQ(s.produced(), 24);
}

TEST(EvolutionSampler, ScoresSteerSelection)
{
    // With a strongly scored member, children should cluster around
    // its choices more often than uniform.
    SearchSpace space("s", SpaceFamily::Nlp, 6, 8, 3);
    EvolutionSampler s(space, 11, 4, 4);
    std::vector<Subnet> members;
    for (int i = 0; i < 4; i++)
        members.push_back(s.next());
    // Reward member 2 heavily.
    for (int i = 0; i < 4; i++)
        s.reportScore(i, i == 2 ? 100.0 : 0.1);
    const Subnet &champion = members[2];
    int closeChildren = 0;
    for (int i = 0; i < 30; i++) {
        Subnet child = s.next();
        int same = 0;
        for (int b = 0; b < child.size(); b++)
            same += child.choice(b) == champion.choice(b);
        // A mutation of the champion matches in all but ~1 block.
        if (same >= child.size() - 2)
            closeChildren++;
        // Keep the champion's lineage strong.
        s.reportScore(child.id(), 50.0);
    }
    EXPECT_GT(closeChildren, 6);  // uniform baseline would be ~0
}

TEST(EvolutionSampler, DeterministicGivenSeedAndScores)
{
    SearchSpace tiny = makeTinySpace();
    auto run = [&tiny] {
        EvolutionSampler s(tiny, 3, 4, 2);
        std::vector<Subnet> out;
        for (int i = 0; i < 12; i++) {
            out.push_back(s.next());
            s.reportScore(out.back().id(),
                          static_cast<double>(i % 3));
        }
        return out;
    };
    EXPECT_EQ(run(), run());
}

TEST(EvolutionSampler, ScoreForAgedOutMemberIsIgnored)
{
    SearchSpace tiny = makeTinySpace();
    EvolutionSampler s(tiny, 7, 2, 2);
    s.next();
    s.next();
    s.next();  // member 0 aged out
    s.reportScore(0, 5.0);  // must not crash
    SUCCEED();
}

TEST(EvolutionSampler, InvalidParametersPanic)
{
    SearchSpace tiny = makeTinySpace();
    EXPECT_THROW(EvolutionSampler(tiny, 7, 1, 1), std::logic_error);
    EXPECT_THROW(EvolutionSampler(tiny, 7, 4, 5), std::logic_error);
}

TEST(HybridSampler, StreamsPartitionTheBlocks)
{
    SearchSpace space("h", SpaceFamily::Nlp, 12, 6, 3, 0.3);
    HybridSampler s(space, 7, 3);
    EXPECT_EQ(s.streamBlocks(0), (std::pair<int, int>{0, 3}));
    EXPECT_EQ(s.streamBlocks(1), (std::pair<int, int>{4, 7}));
    EXPECT_EQ(s.streamBlocks(2), (std::pair<int, int>{8, 11}));
}

TEST(HybridSampler, SubnetsActivateOnlyTheirStream)
{
    SearchSpace space("h", SpaceFamily::Nlp, 12, 6, 3, 0.3);
    HybridSampler s(space, 7, 3);
    for (int i = 0; i < 12; i++) {
        Subnet sn = s.next();
        int stream = s.streamOf(sn.id());
        auto [lo, hi] = s.streamBlocks(stream);
        for (int b = 0; b < sn.size(); b++) {
            if (b < lo || b > hi) {
                EXPECT_EQ(sn.choice(b), 0)
                    << "SN" << i << " block " << b;
            }
        }
    }
}

TEST(HybridSampler, CrossStreamSubnetsShareNoParameterizedLayer)
{
    SearchSpace space("h", SpaceFamily::Nlp, 12, 6, 3, 0.3);
    HybridSampler s(space, 7, 4);
    std::vector<Subnet> subnets;
    for (int i = 0; i < 16; i++)
        subnets.push_back(s.next());
    for (std::size_t i = 0; i < subnets.size(); i++) {
        for (std::size_t j = i + 1; j < subnets.size(); j++) {
            if (s.streamOf(subnets[i].id()) ==
                s.streamOf(subnets[j].id())) {
                continue;
            }
            for (int b = 0; b < subnets[i].size(); b++) {
                bool bothActive = subnets[i].choice(b) ==
                                      subnets[j].choice(b) &&
                                  space.parameterized(
                                      b, subnets[i].choice(b));
                EXPECT_FALSE(bothActive);
            }
        }
    }
}

TEST(HybridSampler, Deterministic)
{
    SearchSpace space("h", SpaceFamily::Nlp, 12, 6, 3, 0.3);
    HybridSampler a(space, 7, 2), b(space, 7, 2);
    for (int i = 0; i < 20; i++)
        ASSERT_EQ(a.next(), b.next());
}

TEST(HybridSampler, RequiresSkipCandidate)
{
    SearchSpace dense("d", SpaceFamily::Nlp, 12, 6, 3, 0.0);
    EXPECT_THROW(HybridSampler(dense, 7, 2), std::logic_error);
    SearchSpace skippy("s", SpaceFamily::Nlp, 4, 6, 3, 0.3);
    EXPECT_THROW(HybridSampler(skippy, 7, 5), std::logic_error);
}

TEST(FixedSequenceSampler, ReplaysAndWraps)
{
    FixedSequenceSampler s({{0, 1}, {1, 0}});
    Subnet a = s.next();
    Subnet b = s.next();
    Subnet c = s.next();
    EXPECT_EQ(a.choices(), (std::vector<std::uint16_t>{0, 1}));
    EXPECT_EQ(b.choices(), (std::vector<std::uint16_t>{1, 0}));
    EXPECT_EQ(c.choices(), a.choices());
    EXPECT_EQ(c.id(), 2);
}

TEST(FixedSequenceSampler, EmptySequencePanics)
{
    EXPECT_THROW(FixedSequenceSampler({}), std::logic_error);
}

} // namespace
} // namespace naspipe
