/**
 * @file
 * Layer kind / LayerId / LayerSpec tests.
 */

#include <gtest/gtest.h>

#include "supernet/layer.h"

namespace naspipe {
namespace {

TEST(LayerKind, FamiliesPartitionAllKinds)
{
    int nlp = 0, cv = 0;
    for (int i = 0; i < kNumLayerKinds; i++) {
        auto kind = static_cast<LayerKind>(i);
        EXPECT_NE(isNlpKind(kind), isCvKind(kind))
            << layerKindName(kind);
        if (isNlpKind(kind))
            nlp++;
        else
            cv++;
    }
    EXPECT_EQ(nlp, 6);
    EXPECT_EQ(cv, 6);
}

TEST(LayerKind, Table5NamesMatchPaper)
{
    EXPECT_STREQ(layerKindName(LayerKind::Conv3x1), "Conv 3x1");
    EXPECT_STREQ(layerKindName(LayerKind::SepConv7x1), "Sep Conv 7x1");
    EXPECT_STREQ(layerKindName(LayerKind::LightConv5x1),
                 "Light Conv 5x1");
    EXPECT_STREQ(layerKindName(LayerKind::Attention8Head),
                 "8 Head Attention");
    EXPECT_STREQ(layerKindName(LayerKind::Conv3x3), "Conv 3x3");
    EXPECT_STREQ(layerKindName(LayerKind::DilConv3x3), "Dil Conv 3x3");
}

TEST(LayerId, KeyIsBijective)
{
    LayerId a{3, 17};
    LayerId b{3, 18};
    LayerId c{4, 17};
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_EQ(a.key(), (LayerId{3, 17}).key());
}

TEST(LayerId, Ordering)
{
    EXPECT_LT((LayerId{1, 5}), (LayerId{2, 0}));
    EXPECT_LT((LayerId{1, 5}), (LayerId{1, 6}));
    EXPECT_EQ((LayerId{1, 5}), (LayerId{1, 5}));
}

TEST(LayerSpec, BatchScalingIsLinear)
{
    LayerSpec spec;
    spec.fwdMs = 10.0;
    spec.bwdMs = 20.0;
    EXPECT_DOUBLE_EQ(spec.fwdMsAt(96, 192), 5.0);
    EXPECT_DOUBLE_EQ(spec.bwdMsAt(384, 192), 40.0);
    EXPECT_DOUBLE_EQ(spec.fwdMsAt(192, 192), 10.0);
}

TEST(LayerSpec, ParamsFromBytes)
{
    LayerSpec spec;
    spec.paramBytes = 400;
    EXPECT_EQ(spec.params(), 100u);
}

TEST(LayerSpec, InvalidBatchPanics)
{
    LayerSpec spec;
    spec.fwdMs = 1.0;
    EXPECT_THROW(spec.fwdMsAt(0, 192), std::logic_error);
    EXPECT_THROW(spec.bwdMsAt(10, 0), std::logic_error);
}

} // namespace
} // namespace naspipe
