/**
 * @file
 * Search-space tests: Table 1 configurations, determinism, skip
 * candidates.
 */

#include <gtest/gtest.h>

#include "supernet/search_space.h"

namespace naspipe {
namespace {

TEST(SearchSpace, Table1Configurations)
{
    struct Expect {
        const char *name;
        int blocks;
        int choices;
        const char *dataset;
    };
    const Expect expectations[] = {
        {"NLP.c0", 48, 96, "WNMT"},   {"NLP.c1", 48, 72, "WNMT"},
        {"NLP.c2", 48, 48, "WNMT"},   {"NLP.c3", 48, 24, "WNMT"},
        {"CV.c1", 32, 48, "ImageNet"}, {"CV.c2", 32, 24, "ImageNet"},
        {"CV.c3", 32, 12, "ImageNet"},
    };
    for (const Expect &e : expectations) {
        SearchSpace space = makeSpaceByName(e.name);
        EXPECT_EQ(space.name(), e.name);
        EXPECT_EQ(space.numBlocks(), e.blocks) << e.name;
        EXPECT_EQ(space.choicesPerBlock(), e.choices) << e.name;
        EXPECT_STREQ(space.dataset(), e.dataset) << e.name;
    }
}

TEST(SearchSpace, UnknownNameIsFatal)
{
    EXPECT_THROW(makeSpaceByName("NLP.c9"), std::runtime_error);
}

TEST(SearchSpace, DefaultNamesInPaperOrder)
{
    auto names = defaultSpaceNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "NLP.c0");
    EXPECT_EQ(names.back(), "CV.c3");
}

TEST(SearchSpace, RebuildIsBitwiseIdentical)
{
    SearchSpace a = makeNlpC2();
    SearchSpace b = makeNlpC2();
    ASSERT_EQ(a.totalParamBytes(), b.totalParamBytes());
    for (int blk = 0; blk < a.numBlocks(); blk += 7) {
        for (int c = 0; c < a.choicesPerBlock(); c += 5) {
            EXPECT_EQ(a.spec(blk, c).paramBytes,
                      b.spec(blk, c).paramBytes);
            EXPECT_EQ(a.spec(blk, c).fwdMs, b.spec(blk, c).fwdMs);
        }
    }
}

TEST(SearchSpace, SeedChangesCosts)
{
    SearchSpace a("x", SpaceFamily::Nlp, 8, 6, 1);
    SearchSpace b("x", SpaceFamily::Nlp, 8, 6, 2);
    EXPECT_NE(a.totalParamBytes(), b.totalParamBytes());
}

TEST(SearchSpace, FamiliesUseTheirOperatorSets)
{
    SearchSpace nlp("n", SpaceFamily::Nlp, 4, 6, 3);
    SearchSpace cv("c", SpaceFamily::Cv, 4, 6, 3);
    for (int c = 0; c < 6; c++) {
        EXPECT_TRUE(isNlpKind(nlp.spec(0, c).kind));
        EXPECT_TRUE(isCvKind(cv.spec(0, c).kind));
    }
}

TEST(SearchSpace, SkipCandidateIsChoiceZero)
{
    SearchSpace space("s", SpaceFamily::Nlp, 8, 6, 3, 0.4);
    EXPECT_DOUBLE_EQ(space.skipMass(), 0.4);
    for (int b = 0; b < space.numBlocks(); b++) {
        EXPECT_EQ(space.spec(b, 0).paramBytes, 0u);
        EXPECT_FALSE(space.parameterized(b, 0));
        EXPECT_TRUE(space.parameterized(b, 1));
    }
}

TEST(SearchSpace, NoSkipWithoutMass)
{
    SearchSpace space("s", SpaceFamily::Nlp, 8, 6, 3, 0.0);
    for (int c = 0; c < 6; c++)
        EXPECT_GT(space.spec(0, c).paramBytes, 0u);
}

TEST(SearchSpace, MeanSubnetBytesAccountsForSkip)
{
    SearchSpace dense("d", SpaceFamily::Nlp, 8, 7, 3, 0.0);
    SearchSpace sparse("s", SpaceFamily::Nlp, 8, 7, 3, 0.5);
    // Same parameterized candidates, but only ~half activate.
    EXPECT_LT(sparse.meanSubnetParamBytes(),
              dense.meanSubnetParamBytes());
}

TEST(SearchSpace, SupernetSizeOrderOfPaper)
{
    // NLP.c1's supernet should be in the tens-of-GB range (the paper
    // reports 14.8B parameters ~ 59 GB fp32).
    SearchSpace space = makeNlpC1();
    double gb = static_cast<double>(space.totalParamBytes()) / 1e9;
    EXPECT_GT(gb, 40.0);
    EXPECT_LT(gb, 70.0);
}

TEST(SearchSpace, PairDependencyProbabilityShrinksWithChoices)
{
    double p0 = makeNlpC0().pairDependencyProbability();
    double p1 = makeNlpC1().pairDependencyProbability();
    double p3 = makeNlpC3().pairDependencyProbability();
    EXPECT_LT(p0, p1);
    EXPECT_LT(p1, p3);
    // The paper's insight: larger spaces manifest fewer dependencies.
    EXPECT_LT(p1, 0.35);
    EXPECT_GT(p3, p1);
}

TEST(SearchSpace, LogCandidates)
{
    SearchSpace space("x", SpaceFamily::Nlp, 5, 4, 3);
    // 4^5 = 1024 candidates => log10 ~ 3.01.
    EXPECT_NEAR(space.logCandidates(), 3.01, 0.01);
    EXPECT_EQ(space.totalLayers(), 20);
}

TEST(SearchSpace, TinySpaceForTests)
{
    SearchSpace tiny = makeTinySpace();
    EXPECT_EQ(tiny.numBlocks(), 4);
    EXPECT_EQ(tiny.choicesPerBlock(), 3);
    EXPECT_DOUBLE_EQ(tiny.skipMass(), 0.0);
}

TEST(SearchSpace, InvalidSkipMassPanics)
{
    EXPECT_THROW(SearchSpace("x", SpaceFamily::Nlp, 4, 3, 1, 1.0),
                 std::logic_error);
    EXPECT_THROW(SearchSpace("x", SpaceFamily::Nlp, 4, 1, 1, 0.5),
                 std::logic_error);
}

TEST(SearchSpace, OutOfRangeSpecPanics)
{
    SearchSpace tiny = makeTinySpace();
    EXPECT_THROW(tiny.spec(4, 0), std::logic_error);
    EXPECT_THROW(tiny.spec(0, 3), std::logic_error);
}

} // namespace
} // namespace naspipe
