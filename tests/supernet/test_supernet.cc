/**
 * @file
 * Supernet aggregate-statistics tests: the "larger supernet, fewer
 * dependencies" insight.
 */

#include <gtest/gtest.h>

#include "supernet/supernet.h"

namespace naspipe {
namespace {

TEST(Supernet, ShareProbabilityFormula)
{
    SearchSpace space("x", SpaceFamily::Nlp, 48, 72, 3);
    Supernet net(space);
    // 1 - (1 - 1/72)^48 ~ 0.488.
    EXPECT_NEAR(net.shareProbability(), 0.488, 0.005);
}

TEST(Supernet, LargerSpacesShareLess)
{
    SearchSpace small("s", SpaceFamily::Nlp, 48, 24, 3);
    SearchSpace large("l", SpaceFamily::Nlp, 48, 96, 3);
    EXPECT_GT(Supernet(small).shareProbability(),
              Supernet(large).shareProbability());
}

TEST(Supernet, ExpectedIndependentRun)
{
    SearchSpace space("x", SpaceFamily::Nlp, 48, 72, 3);
    Supernet net(space);
    EXPECT_NEAR(net.expectedIndependentRun(),
                1.0 / net.shareProbability(), 1e-9);
}

TEST(Supernet, EmpiricalDensityTracksAnalytic)
{
    SearchSpace space("x", SpaceFamily::Nlp, 48, 24, 3);
    Supernet net(space);
    UniformSampler sampler(space, 17);
    auto subnets = Supernet::drawMany(sampler, 200);
    double measured = Supernet::dependencyDensity(subnets, 50);
    EXPECT_NEAR(measured, net.shareProbability(), 0.05);
}

TEST(Supernet, DensityOfIdenticalSubnetsIsOne)
{
    std::vector<Subnet> same;
    for (int i = 0; i < 5; i++)
        same.emplace_back(i, std::vector<std::uint16_t>{1, 2, 1});
    EXPECT_DOUBLE_EQ(Supernet::dependencyDensity(same, 5), 1.0);
}

TEST(Supernet, IndependentPrefix)
{
    std::vector<Subnet> list;
    list.emplace_back(0, std::vector<std::uint16_t>{0, 0});
    list.emplace_back(1, std::vector<std::uint16_t>{1, 1});
    list.emplace_back(2, std::vector<std::uint16_t>{2, 2});
    list.emplace_back(3, std::vector<std::uint16_t>{0, 1});  // hits 0+1
    EXPECT_EQ(Supernet::independentPrefixLength(list), 3);
}

TEST(Supernet, FullyIndependentListPrefixIsWholeList)
{
    std::vector<Subnet> list;
    list.emplace_back(0, std::vector<std::uint16_t>{0, 0});
    list.emplace_back(1, std::vector<std::uint16_t>{1, 1});
    EXPECT_EQ(Supernet::independentPrefixLength(list), 2);
}

TEST(Supernet, DrawManyCounts)
{
    SearchSpace tiny = makeTinySpace();
    UniformSampler sampler(tiny, 5);
    auto subnets = Supernet::drawMany(sampler, 7);
    EXPECT_EQ(subnets.size(), 7u);
    EXPECT_EQ(subnets.back().id(), 6);
}

} // namespace
} // namespace naspipe
