/**
 * @file
 * Subnet tests: identity, sharing, costs.
 */

#include <gtest/gtest.h>

#include "supernet/subnet.h"

namespace naspipe {
namespace {

TEST(Subnet, BasicAccessors)
{
    Subnet sn(5, {1, 0, 2, 1});
    EXPECT_EQ(sn.id(), 5);
    EXPECT_EQ(sn.size(), 4);
    EXPECT_EQ(sn.choice(2), 2);
    EXPECT_EQ(sn.layer(2), (LayerId{2, 2}));
    EXPECT_EQ(sn.toString(), "SN5[1,0,2,1]");
}

TEST(Subnet, SharesLayerOnlyOnSameBlockSameChoice)
{
    Subnet a(0, {1, 0, 2});
    Subnet b(1, {0, 1, 2});  // shares block 2 choice 2
    Subnet c(2, {0, 1, 0});  // choice 0 appears but never same block
    EXPECT_TRUE(a.sharesLayerWith(b));
    EXPECT_FALSE(a.sharesLayerWith(c));
}

TEST(Subnet, SharedBlocksLists)
{
    Subnet a(0, {1, 1, 1, 1});
    Subnet b(1, {1, 0, 1, 0});
    EXPECT_EQ(a.sharedBlocks(b), (std::vector<int>{0, 2}));
    EXPECT_TRUE(a.sharedBlocks(a).size() == 4);
}

TEST(Subnet, RangeScopedSharing)
{
    Subnet a(0, {1, 0, 2, 1});
    Subnet b(1, {1, 1, 1, 1});  // shares blocks 0 and 3
    EXPECT_TRUE(a.sharesLayerInRange(b, 0, 1));
    EXPECT_FALSE(a.sharesLayerInRange(b, 1, 2));
    EXPECT_TRUE(a.sharesLayerInRange(b, 2, 3));
}

TEST(Subnet, MismatchedSizesPanic)
{
    Subnet a(0, {1, 0});
    Subnet b(1, {1, 0, 2});
    EXPECT_THROW(a.sharesLayerWith(b), std::logic_error);
}

TEST(Subnet, BadRangePanics)
{
    Subnet a(0, {1, 0, 2});
    Subnet b(1, {1, 0, 2});
    EXPECT_THROW(a.sharesLayerInRange(b, 2, 1), std::logic_error);
    EXPECT_THROW(a.sharesLayerInRange(b, 0, 3), std::logic_error);
}

TEST(Subnet, ParamBytesSumActivatedLayers)
{
    SearchSpace tiny = makeTinySpace();
    Subnet sn(0, {0, 1, 2, 0});
    std::uint64_t expected = 0;
    for (int b = 0; b < 4; b++)
        expected += tiny.spec(b, sn.choice(b)).paramBytes;
    EXPECT_EQ(sn.paramBytes(tiny), expected);
}

TEST(Subnet, ComputeTimesScaleWithBatch)
{
    SearchSpace tiny = makeTinySpace();
    Subnet sn(0, {0, 1, 2, 0});
    double atRef = sn.fwdMs(tiny, tiny.referenceBatch());
    double atHalf = sn.fwdMs(tiny, tiny.referenceBatch() / 2);
    EXPECT_NEAR(atHalf, atRef / 2, 1e-9);
    EXPECT_GT(sn.bwdMs(tiny, tiny.referenceBatch()), atRef);
}

TEST(Subnet, NegativeIdPanics)
{
    EXPECT_THROW(Subnet(-1, {0}), std::logic_error);
}

TEST(Subnet, EmptyChoicesPanic)
{
    EXPECT_THROW(Subnet(0, {}), std::logic_error);
}

} // namespace
} // namespace naspipe
