/**
 * @file
 * Layer profile database tests: Table 5 fidelity.
 */

#include <gtest/gtest.h>

#include "supernet/profile.h"

namespace naspipe {
namespace {

TEST(LayerProfileDb, Table5NlpRowsExact)
{
    const auto &db = LayerProfileDb::instance();
    const LayerSpec &conv = db.reference(LayerKind::Conv3x1);
    EXPECT_DOUBLE_EQ(conv.fwdMs, 5.0);
    EXPECT_DOUBLE_EQ(conv.bwdMs, 10.0);
    EXPECT_DOUBLE_EQ(conv.swapMs, 1.76);

    const LayerSpec &sep = db.reference(LayerKind::SepConv7x1);
    EXPECT_DOUBLE_EQ(sep.fwdMs, 4.2);
    EXPECT_DOUBLE_EQ(sep.bwdMs, 5.7);
    EXPECT_DOUBLE_EQ(sep.swapMs, 0.56);

    const LayerSpec &light = db.reference(LayerKind::LightConv5x1);
    EXPECT_DOUBLE_EQ(light.fwdMs, 0.68);
    EXPECT_DOUBLE_EQ(light.bwdMs, 1.4);
    EXPECT_DOUBLE_EQ(light.swapMs, 0.03);

    const LayerSpec &attn = db.reference(LayerKind::Attention8Head);
    EXPECT_DOUBLE_EQ(attn.fwdMs, 7.9);
    EXPECT_DOUBLE_EQ(attn.bwdMs, 13.8);
    EXPECT_DOUBLE_EQ(attn.swapMs, 2.07);
}

TEST(LayerProfileDb, Table5CvRowsExact)
{
    const auto &db = LayerProfileDb::instance();
    const LayerSpec &conv = db.reference(LayerKind::Conv3x3);
    EXPECT_DOUBLE_EQ(conv.fwdMs, 7.9);
    EXPECT_DOUBLE_EQ(conv.bwdMs, 13.8);
    EXPECT_DOUBLE_EQ(conv.swapMs, 4.6);

    const LayerSpec &sep3 = db.reference(LayerKind::SepConv3x3);
    EXPECT_DOUBLE_EQ(sep3.fwdMs, 2.8);
    EXPECT_DOUBLE_EQ(sep3.bwdMs, 4.0);
    EXPECT_DOUBLE_EQ(sep3.swapMs, 0.68);

    const LayerSpec &sep5 = db.reference(LayerKind::SepConv5x5);
    EXPECT_DOUBLE_EQ(sep5.fwdMs, 6.7);
    EXPECT_DOUBLE_EQ(sep5.bwdMs, 9.9);
    EXPECT_DOUBLE_EQ(sep5.swapMs, 2.04);

    const LayerSpec &dil = db.reference(LayerKind::DilConv3x3);
    EXPECT_DOUBLE_EQ(dil.fwdMs, 2.5);
    EXPECT_DOUBLE_EQ(dil.bwdMs, 3.4);
    EXPECT_DOUBLE_EQ(dil.swapMs, 0.58);
}

TEST(LayerProfileDb, ParamBytesConsistentWithSwapTime)
{
    // Swap time must equal paramBytes / PCIe bandwidth for every kind
    // (self-consistency of the cost model).
    const auto &db = LayerProfileDb::instance();
    for (const LayerSpec &spec : db.all()) {
        double expectedMs = static_cast<double>(spec.paramBytes) /
                            kPcieBytesPerSec * 1e3;
        EXPECT_NEAR(spec.swapMs, expectedMs, 1e-6)
            << layerKindName(spec.kind);
    }
}

TEST(LayerProfileDb, IdentityIsParameterFree)
{
    const auto &db = LayerProfileDb::instance();
    EXPECT_EQ(db.reference(LayerKind::Identity).paramBytes, 0u);
}

TEST(LayerProfileDb, ScaledVariant)
{
    const auto &db = LayerProfileDb::instance();
    LayerSpec half = db.scaled(LayerKind::Conv3x1, 0.5);
    const LayerSpec &full = db.reference(LayerKind::Conv3x1);
    EXPECT_NEAR(static_cast<double>(half.paramBytes),
                static_cast<double>(full.paramBytes) * 0.5, 1.0);
    EXPECT_DOUBLE_EQ(half.fwdMs, full.fwdMs * 0.5);
    EXPECT_DOUBLE_EQ(half.swapMs, full.swapMs * 0.5);
}

TEST(LayerProfileDb, InvalidScalePanics)
{
    EXPECT_THROW(LayerProfileDb::instance().scaled(LayerKind::Conv3x1,
                                                   0.0),
                 std::logic_error);
}

TEST(LayerProfileDb, ReferenceBatchPerFamily)
{
    EXPECT_EQ(LayerProfileDb::referenceBatch(LayerKind::Conv3x1), 192);
    EXPECT_EQ(LayerProfileDb::referenceBatch(LayerKind::Conv3x3), 64);
}

TEST(LayerProfileDb, ComputeDominatesSwap)
{
    // The premise of context switching (§3.3): copying a layer is
    // faster than computing it, so swaps hide behind compute.
    const auto &db = LayerProfileDb::instance();
    for (const LayerSpec &spec : db.all()) {
        if (spec.paramBytes == 0)
            continue;
        EXPECT_LT(spec.swapMs, spec.fwdMs + spec.bwdMs)
            << layerKindName(spec.kind);
    }
}

} // namespace
} // namespace naspipe
