/**
 * @file
 * SystemModel and GreedyPolicy tests.
 */

#include <gtest/gtest.h>

#include "mock_stage.h"
#include "schedule/scheduler.h"

namespace naspipe {
namespace {

Subnet
sn(SubnetId id, std::vector<std::uint16_t> choices)
{
    return Subnet(id, std::move(choices));
}

TEST(GreedyPolicy, IgnoresDependencies)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {0, 0}));  // fully dependent on 0
    stage.queueFwd(1);
    GreedyPolicy policy;
    // Greedy runs it anyway: the violation BSP/ASP systems commit.
    EXPECT_EQ(policy.pick(stage), Decision::forward(1));
}

TEST(GreedyPolicy, BackwardFirstLowestId)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {1, 1}));
    stage.addSubnet(sn(2, {2, 2}));
    stage.queueFwd(0);
    stage.queueBwd(2);
    stage.queueBwd(1);
    GreedyPolicy policy;
    EXPECT_EQ(policy.pick(stage), Decision::backward(1));
}

TEST(SystemModel, PaperSystemsConfiguredCorrectly)
{
    SystemModel naspipe = naspipeSystem();
    EXPECT_EQ(naspipe.policy, PolicyKind::Csp);
    EXPECT_EQ(naspipe.memory, MemoryMode::PredictivePrefetch);
    EXPECT_TRUE(naspipe.balancedPartition);
    EXPECT_TRUE(naspipe.mirroring);
    EXPECT_TRUE(naspipe.predictor);
    EXPECT_FALSE(naspipe.bulkFlush);
    EXPECT_STREQ(naspipe.syncName(), "CSP");

    SystemModel gpipe = gpipeSystem();
    EXPECT_EQ(gpipe.policy, PolicyKind::Greedy);
    EXPECT_EQ(gpipe.memory, MemoryMode::AllResident);
    EXPECT_TRUE(gpipe.bulkFlush);
    EXPECT_TRUE(gpipe.recompute);
    EXPECT_STREQ(gpipe.syncName(), "BSP");

    SystemModel pipedream = pipedreamSystem();
    EXPECT_FALSE(pipedream.bulkFlush);
    EXPECT_TRUE(pipedream.weightStash);
    EXPECT_FALSE(pipedream.recompute);
    EXPECT_STREQ(pipedream.syncName(), "ASP");

    SystemModel vpipe = vpipeSystem();
    EXPECT_EQ(vpipe.memory, MemoryMode::SwapOnDemand);
    EXPECT_TRUE(vpipe.bulkFlush);
    EXPECT_STREQ(vpipe.syncName(), "BSP");
}

TEST(SystemModel, AblationsFlipOneAxisEach)
{
    SystemModel base = naspipeSystem();

    SystemModel noSched = naspipeWithoutScheduler();
    EXPECT_TRUE(noSched.bulkFlush);
    EXPECT_EQ(noSched.policy, base.policy);  // CSP preserved

    SystemModel noPred = naspipeWithoutPredictor();
    EXPECT_EQ(noPred.memory, MemoryMode::AllResident);
    EXPECT_FALSE(noPred.predictor);
    EXPECT_EQ(noPred.policy, PolicyKind::Csp);

    SystemModel noMirror = naspipeWithoutMirroring();
    EXPECT_FALSE(noMirror.mirroring);
    EXPECT_FALSE(noMirror.balancedPartition);
    EXPECT_EQ(noMirror.memory, base.memory);
}

TEST(SystemModel, OnlyCspPreservesDependencies)
{
    EXPECT_TRUE(naspipeSystem().preservesDependencies());
    EXPECT_FALSE(gpipeSystem().preservesDependencies());
    EXPECT_FALSE(pipedreamSystem().preservesDependencies());
    EXPECT_FALSE(vpipeSystem().preservesDependencies());
    EXPECT_TRUE(naspipeWithoutScheduler().preservesDependencies());
}

TEST(SystemModel, EffectiveBulkDefaultsToDepth)
{
    SystemModel m = gpipeSystem();
    EXPECT_EQ(m.effectiveBulk(8), 8);
    m.bulkSize = 4;
    EXPECT_EQ(m.effectiveBulk(8), 4);
}

TEST(SystemModel, EffectiveInflightRules)
{
    SystemModel naspipe = naspipeSystem();
    EXPECT_EQ(naspipe.effectiveInflight(8), 16);  // 2D
    SystemModel pipedream = pipedreamSystem();
    EXPECT_EQ(pipedream.effectiveInflight(8), 8);  // 1F1B: D
    SystemModel custom = naspipeSystem();
    custom.maxInflight = 5;
    EXPECT_EQ(custom.effectiveInflight(8), 5);
    // BSP never limits below the bulk size.
    SystemModel gpipe = gpipeSystem();
    gpipe.maxInflight = 2;
    EXPECT_EQ(gpipe.effectiveInflight(8), 8);
}

TEST(MakePolicy, MatchesPolicyKind)
{
    EXPECT_STREQ(makePolicy(naspipeSystem())->name(), "csp");
    EXPECT_STREQ(makePolicy(gpipeSystem())->name(), "greedy");
}

TEST(Names, EnumsPrintable)
{
    EXPECT_STREQ(policyKindName(PolicyKind::Csp), "csp");
    EXPECT_STREQ(policyKindName(PolicyKind::Greedy), "greedy");
    EXPECT_STREQ(memoryModeName(MemoryMode::AllResident),
                 "all-resident");
    EXPECT_STREQ(memoryModeName(MemoryMode::SwapOnDemand),
                 "swap-on-demand");
    EXPECT_STREQ(memoryModeName(MemoryMode::PredictivePrefetch),
                 "predictive-prefetch");
}

} // namespace
} // namespace naspipe
