/**
 * @file
 * Context predictor tests (Algorithm 3).
 */

#include <gtest/gtest.h>

#include "mock_stage.h"
#include "schedule/predictor.h"

namespace naspipe {
namespace {

Subnet
sn(SubnetId id, std::vector<std::uint16_t> choices)
{
    return Subnet(id, std::move(choices));
}

struct FetchRecorder {
    std::vector<std::pair<Task, PredictReason>> calls;

    Predictor::FetchFn
    fn()
    {
        return [this](const Task &t, PredictReason r) {
            calls.emplace_back(t, r);
        };
    }
};

TEST(Predictor, BackwardBranchPredictsReleasedForward)
{
    // SN1 is blocked by SN0; receiving SN0's backward should predict
    // SN1's forward (Algorithm 3 lines 4-8).
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {2, 2}));
    stage.addSubnet(sn(1, {2, 3}));
    stage.queueFwd(1);

    Predictor predictor;
    FetchRecorder rec;
    predictor.beforeBackward(stage, 0, {}, rec.fn());
    ASSERT_EQ(rec.calls.size(), 1u);
    EXPECT_EQ(rec.calls[0].first,
              (Task{TaskType::Forward, 1, 0}));
    EXPECT_EQ(rec.calls[0].second, PredictReason::AfterBackward);
}

TEST(Predictor, BackwardBranchRecordsPendingBackwards)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    Predictor predictor;
    FetchRecorder rec;
    std::vector<PendingBackward> carried = {{5, 5}, {6, 6}};
    predictor.beforeBackward(stage, 0, carried, rec.fn());
    EXPECT_EQ(predictor.blocked().size(), 2u);
    EXPECT_EQ(predictor.stats().pendingRecorded, 2u);
    // Duplicate deliveries are de-duplicated.
    predictor.beforeBackward(stage, 0, carried, rec.fn());
    EXPECT_EQ(predictor.blocked().size(), 2u);
}

TEST(Predictor, ForwardBranchReleasesPendingBackward)
{
    MockStage stage(1, 2, 1, 1);
    stage.addSubnet(sn(0, {0, 0}));
    Predictor predictor;
    FetchRecorder rec;
    predictor.beforeBackward(stage, 0, {{7, 7}}, rec.fn());
    rec.calls.clear();
    // Forward of SN7 runs: the pending backward's context is fetched.
    predictor.beforeForward(stage, 7, rec.fn());
    ASSERT_FALSE(rec.calls.empty());
    EXPECT_EQ(rec.calls[0].first,
              (Task{TaskType::Backward, 7, 1}));
    EXPECT_EQ(rec.calls[0].second,
              PredictReason::ReleasedBackward);
    EXPECT_TRUE(predictor.blocked().empty());
}

TEST(Predictor, ForwardBranchPredictsNextForward)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {1, 1}));
    stage.addSubnet(sn(2, {2, 2}));
    // SN1 already popped (it is the current forward); SN2 queued.
    stage.queueFwd(2);
    Predictor predictor;
    FetchRecorder rec;
    predictor.beforeForward(stage, 1, rec.fn());
    ASSERT_EQ(rec.calls.size(), 1u);
    EXPECT_EQ(rec.calls[0].first, (Task{TaskType::Forward, 2, 0}));
    EXPECT_EQ(rec.calls[0].second, PredictReason::AfterForward);
}

TEST(Predictor, NoPredictionWhenQueueBlocked)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {4, 4}));
    stage.addSubnet(sn(1, {4, 4}));
    stage.addSubnet(sn(2, {4, 4}));
    stage.queueFwd(2);  // blocked by unfinished SN1 (and SN0)
    Predictor predictor;
    FetchRecorder rec;
    // Receiving SN0's backward does not release SN2 (SN1 remains).
    predictor.beforeBackward(stage, 0, {}, rec.fn());
    EXPECT_TRUE(rec.calls.empty());
}

TEST(Predictor, PredictionLooksPastPendingWrites)
{
    // The whole point of prediction: the blocker's write has not
    // landed yet, but the fetch must start now.
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {2, 2}));
    stage.addSubnet(sn(1, {2, 3}));
    stage.queueFwd(1);
    stage.setWritesPending(1, true);
    Predictor predictor;
    FetchRecorder rec;
    predictor.beforeBackward(stage, 0, {}, rec.fn());
    EXPECT_EQ(rec.calls.size(), 1u);
}

TEST(Predictor, StatsAccumulate)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {1, 1}));
    stage.queueFwd(1);
    Predictor predictor;
    FetchRecorder rec;
    predictor.beforeBackward(stage, 0, {}, rec.fn());
    predictor.beforeForward(stage, 1, rec.fn());
    EXPECT_EQ(predictor.stats().calls, 2u);
    EXPECT_GE(predictor.stats().fetchesRequested, 1u);
}

TEST(Predictor, ResetClearsState)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    Predictor predictor;
    FetchRecorder rec;
    predictor.beforeBackward(stage, 0, {{9, 9}}, rec.fn());
    predictor.reset();
    EXPECT_TRUE(predictor.blocked().empty());
    EXPECT_EQ(predictor.stats().calls, 0u);
}

TEST(Predictor, NullFetchPanics)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    Predictor predictor;
    EXPECT_THROW(predictor.beforeForward(stage, 0, nullptr),
                 std::logic_error);
}

} // namespace
} // namespace naspipe
