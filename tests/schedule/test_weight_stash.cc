/**
 * @file
 * WeightStash (PipeDream ASP) and VpipeSwapPlanner tests.
 */

#include <gtest/gtest.h>

#include "schedule/asp_scheduler.h"
#include "schedule/vpipe_scheduler.h"
#include "supernet/search_space.h"

namespace naspipe {
namespace {

TEST(WeightStash, ForwardStashesBackwardReleases)
{
    WeightStash stash;
    stash.onForward(0, 100);
    stash.onForward(1, 200);
    EXPECT_EQ(stash.liveVersions(), 2u);
    EXPECT_EQ(stash.liveBytes(), 300u);
    EXPECT_EQ(stash.onBackward(0), 100u);
    EXPECT_EQ(stash.liveBytes(), 200u);
    EXPECT_EQ(stash.peakBytes(), 300u);
}

TEST(WeightStash, DoubleStashPanics)
{
    WeightStash stash;
    stash.onForward(0, 100);
    EXPECT_THROW(stash.onForward(0, 100), std::logic_error);
}

TEST(WeightStash, BackwardWithoutStashPanics)
{
    WeightStash stash;
    EXPECT_THROW(stash.onBackward(3), std::logic_error);
}

TEST(WeightStash, StashFactorPerStage)
{
    // 1F1B: stage s holds (D - s) versions; the extra factor is one
    // less than that.
    EXPECT_DOUBLE_EQ(WeightStash::stashFactor(0, 8), 7.0);
    EXPECT_DOUBLE_EQ(WeightStash::stashFactor(7, 8), 0.0);
    EXPECT_DOUBLE_EQ(WeightStash::meanStashFactor(8), 3.5);
}

TEST(WeightStash, Reset)
{
    WeightStash stash;
    stash.onForward(0, 50);
    stash.reset();
    EXPECT_EQ(stash.liveVersions(), 0u);
    EXPECT_EQ(stash.peakBytes(), 0u);
}

TEST(VpipeSwapPlanner, FirstExecutionMissesEverything)
{
    SearchSpace space("x", SpaceFamily::Nlp, 8, 4, 3);
    VpipeSwapPlanner planner(space, 0);
    Subnet sn(0, {0, 1, 2, 3, 0, 1, 2, 3});
    SwapPlan plan = planner.plan(sn, 0, 3);
    EXPECT_EQ(plan.missLayers, 4);
    EXPECT_EQ(plan.hitLayers, 0);
    EXPECT_GT(plan.fetchBytes, 0u);
    EXPECT_EQ(plan.evictBytes, 0u);
}

TEST(VpipeSwapPlanner, SharedLayersHitNextExecution)
{
    SearchSpace space("x", SpaceFamily::Nlp, 8, 4, 3);
    VpipeSwapPlanner planner(space, 0);
    Subnet a(0, {0, 1, 2, 3, 0, 1, 2, 3});
    Subnet b(1, {0, 1, 3, 2, 0, 1, 2, 3});  // shares blocks 0,1
    planner.plan(a, 0, 3);
    SwapPlan plan = planner.plan(b, 0, 3);
    EXPECT_EQ(plan.hitLayers, 2);
    EXPECT_EQ(plan.missLayers, 2);
    EXPECT_GT(plan.evictBytes, 0u);  // a's non-shared layers leave
}

TEST(VpipeSwapPlanner, DisjointSubnetEvictsAll)
{
    SearchSpace space("x", SpaceFamily::Nlp, 4, 4, 3);
    VpipeSwapPlanner planner(space, 0);
    Subnet a(0, {0, 0, 0, 0});
    Subnet b(1, {1, 1, 1, 1});
    SwapPlan first = planner.plan(a, 0, 3);
    SwapPlan second = planner.plan(b, 0, 3);
    EXPECT_EQ(second.hitLayers, 0);
    EXPECT_EQ(second.evictBytes, first.fetchBytes);
}

TEST(VpipeSwapPlanner, SkipCandidatesIgnored)
{
    SearchSpace space("s", SpaceFamily::Nlp, 4, 4, 3, 0.4);
    VpipeSwapPlanner planner(space, 0);
    Subnet sn(0, {0, 0, 1, 2});  // two skip blocks
    SwapPlan plan = planner.plan(sn, 0, 3);
    EXPECT_EQ(plan.hitLayers + plan.missLayers, 2);
}

TEST(VpipeSwapPlanner, ResidentTracking)
{
    SearchSpace space("x", SpaceFamily::Nlp, 4, 4, 3);
    VpipeSwapPlanner planner(space, 1);
    Subnet sn(0, {0, 1, 2, 3});
    planner.plan(sn, 1, 2);
    EXPECT_EQ(planner.residentLayers(), 2u);
    planner.reset();
    EXPECT_EQ(planner.residentLayers(), 0u);
}

} // namespace
} // namespace naspipe
