/**
 * @file
 * A scriptable StageInfo for scheduler-policy unit tests.
 */

#ifndef NASPIPE_TESTS_SCHEDULE_MOCK_STAGE_H
#define NASPIPE_TESTS_SCHEDULE_MOCK_STAGE_H

#include <map>
#include <vector>

#include "schedule/scheduler.h"

namespace naspipe {

/**
 * StageInfo backed by plain containers. Subnets are registered via
 * addSubnet (in ID order), queued explicitly, and the block range is
 * the same even split for every subnet unless overridden.
 */
class MockStage : public StageInfo
{
  public:
    /**
     * @param stage this stage's index
     * @param numStages pipeline depth
     * @param firstBlock stage's first block (for every subnet)
     * @param lastBlock stage's last block (inclusive)
     * @param space optional space for skip-aware dependency checks
     */
    MockStage(int stage, int numStages, int firstBlock, int lastBlock,
              const SearchSpace *space = nullptr)
        : _stage(stage), _numStages(numStages),
          _firstBlock(firstBlock), _lastBlock(lastBlock), _deps(space)
    {
    }

    int stageIndex() const override { return _stage; }
    int numStages() const override { return _numStages; }
    const std::vector<SubnetId> &fwdCandidates() const override
    {
        return _fwd;
    }
    const std::vector<SubnetId> &bwdCandidates() const override
    {
        return _bwd;
    }
    const Subnet &subnet(SubnetId id) const override
    {
        return _deps.subnet(id);
    }
    std::pair<int, int> blockRange(SubnetId id) const override
    {
        auto it = _ranges.find(id);
        if (it != _ranges.end())
            return it->second;
        return {_firstBlock, _lastBlock};
    }
    const DependencyTracker &deps() const override { return _deps; }
    bool upstreamWritesDone(SubnetId id) const override
    {
        auto it = _writesPending.find(id);
        return it == _writesPending.end() || !it->second;
    }

    /** Register a subnet (must arrive in sequence order). */
    void addSubnet(const Subnet &sn) { _deps.registerSubnet(sn); }

    /** Queue helpers. */
    void queueFwd(SubnetId id) { _fwd.push_back(id); }
    void queueBwd(SubnetId id) { _bwd.push_back(id); }
    void clearQueues()
    {
        _fwd.clear();
        _bwd.clear();
    }

    /** Mark a subnet's backward finished on this stage. */
    void finish(SubnetId id) { _deps.markFinished(id); }

    /** Override one subnet's block range. */
    void setRange(SubnetId id, int lo, int hi)
    {
        _ranges[id] = {lo, hi};
    }

    /** Simulate a pending cross-stage write for @p id. */
    void setWritesPending(SubnetId id, bool pending)
    {
        _writesPending[id] = pending;
    }

    DependencyTracker &mutableDeps() { return _deps; }

  private:
    int _stage;
    int _numStages;
    int _firstBlock;
    int _lastBlock;
    DependencyTracker _deps;
    std::vector<SubnetId> _fwd;
    std::vector<SubnetId> _bwd;
    std::map<SubnetId, std::pair<int, int>> _ranges;
    std::map<SubnetId, bool> _writesPending;
};

} // namespace naspipe

#endif // NASPIPE_TESTS_SCHEDULE_MOCK_STAGE_H
