/**
 * @file
 * FlushController (BSP bulk) tests.
 */

#include <gtest/gtest.h>

#include "schedule/bsp_scheduler.h"

namespace naspipe {
namespace {

TEST(FlushController, BulkMembership)
{
    FlushController ctl(4);
    EXPECT_EQ(ctl.bulkOf(0), 0);
    EXPECT_EQ(ctl.bulkOf(3), 0);
    EXPECT_EQ(ctl.bulkOf(4), 1);
    EXPECT_EQ(ctl.bulkSize(), 4);
}

TEST(FlushController, InjectionGatedToCurrentBulk)
{
    FlushController ctl(2);
    EXPECT_TRUE(ctl.canInject(0));
    EXPECT_TRUE(ctl.canInject(1));
    EXPECT_FALSE(ctl.canInject(2));
}

TEST(FlushController, FlushOnLastCompletion)
{
    FlushController ctl(3);
    EXPECT_FALSE(ctl.onSubnetComplete(0));
    EXPECT_FALSE(ctl.onSubnetComplete(1));
    EXPECT_EQ(ctl.completedInBulk(), 2);
    EXPECT_TRUE(ctl.onSubnetComplete(2));  // flush!
    EXPECT_EQ(ctl.currentBulk(), 1);
    EXPECT_EQ(ctl.flushes(), 1u);
    EXPECT_TRUE(ctl.canInject(3));
}

TEST(FlushController, OutOfOrderCompletionWithinBulk)
{
    FlushController ctl(3);
    EXPECT_FALSE(ctl.onSubnetComplete(2));
    EXPECT_FALSE(ctl.onSubnetComplete(0));
    EXPECT_TRUE(ctl.onSubnetComplete(1));
}

TEST(FlushController, CompletionOutsideBulkPanics)
{
    FlushController ctl(2);
    EXPECT_THROW(ctl.onSubnetComplete(2), std::logic_error);
}

TEST(FlushController, BulkMembersEnumerated)
{
    FlushController ctl(3);
    EXPECT_EQ(ctl.bulkMembers(2),
              (std::vector<SubnetId>{6, 7, 8}));
}

TEST(FlushController, Reset)
{
    FlushController ctl(2);
    ctl.onSubnetComplete(0);
    ctl.onSubnetComplete(1);
    ctl.reset();
    EXPECT_EQ(ctl.currentBulk(), 0);
    EXPECT_EQ(ctl.flushes(), 0u);
    EXPECT_TRUE(ctl.canInject(0));
}

TEST(FlushController, SingleSubnetBulksFlushEveryTime)
{
    FlushController ctl(1);
    for (SubnetId id = 0; id < 5; id++)
        EXPECT_TRUE(ctl.onSubnetComplete(id));
    EXPECT_EQ(ctl.flushes(), 5u);
}

TEST(FlushController, InvalidBulkSizePanics)
{
    EXPECT_THROW(FlushController(0), std::logic_error);
}

} // namespace
} // namespace naspipe
