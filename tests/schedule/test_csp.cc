/**
 * @file
 * CSP policy tests (Algorithms 1+2 selection rules).
 */

#include <gtest/gtest.h>

#include "mock_stage.h"
#include "schedule/csp_scheduler.h"

namespace naspipe {
namespace {

Subnet
sn(SubnetId id, std::vector<std::uint16_t> choices)
{
    return Subnet(id, std::move(choices));
}

TEST(CspPolicy, BackwardAlwaysFirst)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {1, 1}));
    stage.queueFwd(1);
    stage.queueBwd(0);
    CspPolicy policy;
    EXPECT_EQ(policy.pick(stage), Decision::backward(0));
}

TEST(CspPolicy, LowestIdBackwardChosen)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {1, 1}));
    stage.queueBwd(1);
    stage.queueBwd(0);
    CspPolicy policy;
    EXPECT_EQ(policy.pick(stage), Decision::backward(0));
}

TEST(CspPolicy, LowestSatisfyingForward)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {0, 1}));  // blocked by 0 (block 0)
    stage.addSubnet(sn(2, {1, 2}));  // independent
    stage.queueFwd(1);
    stage.queueFwd(2);
    CspPolicy policy;
    // SN1 blocked => the scheduler advances SN2 past it.
    EXPECT_EQ(policy.pick(stage), Decision::forward(2));
    stage.finish(0);
    EXPECT_EQ(policy.pick(stage), Decision::forward(1));
}

TEST(CspPolicy, QueueOrderDoesNotTrumpSequenceId)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {1, 1}));
    // Arrival order 1 then 0; both runnable: lower ID wins.
    stage.queueFwd(1);
    stage.queueFwd(0);
    CspPolicy policy;
    EXPECT_EQ(policy.pick(stage), Decision::forward(0));
}

TEST(CspPolicy, NothingRunnableReturnsNone)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {0, 0}));
    stage.queueFwd(1);
    CspPolicy policy;
    EXPECT_EQ(policy.pick(stage), Decision::none());
}

TEST(CspPolicy, EmptyQueuesReturnNone)
{
    MockStage stage(0, 2, 0, 1);
    CspPolicy policy;
    EXPECT_FALSE(policy.pick(stage).valid());
}

TEST(CspPolicy, StageLocalCheckUsesOwnRange)
{
    // SN1 shares block 1 with SN0, but stage 0 only owns block 0:
    // SN1's forward at stage 0 proceeds; stage 1 would block it.
    MockStage stage0(0, 2, 0, 0);
    MockStage stage1(1, 2, 1, 1);
    for (auto *stage : {&stage0, &stage1}) {
        stage->addSubnet(sn(0, {0, 7}));
        stage->addSubnet(sn(1, {1, 7}));
        stage->queueFwd(1);
    }
    CspPolicy policy;
    EXPECT_EQ(policy.pick(stage0), Decision::forward(1));
    EXPECT_EQ(policy.pick(stage1), Decision::none());
}

TEST(CspPolicy, MirrorVisibilityGatesDispatch)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {0, 1}));
    stage.queueFwd(1);
    stage.finish(0);  // Algorithm 2 satisfied...
    stage.setWritesPending(1, true);  // ...but the push is in flight.
    CspPolicy policy;
    EXPECT_EQ(policy.pick(stage), Decision::none());
    stage.setWritesPending(1, false);
    EXPECT_EQ(policy.pick(stage), Decision::forward(1));
}

TEST(CspPolicy, SchedulableForwardIgnoresWritesWhenAsked)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {1, 1}));
    stage.queueFwd(1);
    stage.setWritesPending(1, true);
    // The predictor's call looks past the pending write...
    EXPECT_EQ(CspPolicy::schedulableForward(stage, -1, false), 1);
    // ...while the dispatch call does not.
    EXPECT_EQ(CspPolicy::schedulableForward(stage, -1, true), -1);
}

TEST(CspPolicy, SchedulableForwardWithAssumedFinish)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {3, 3}));
    stage.addSubnet(sn(1, {3, 4}));
    stage.queueFwd(1);
    EXPECT_EQ(CspPolicy::schedulableForward(stage), -1);
    EXPECT_EQ(CspPolicy::schedulableForward(stage, 0), 1);
}

TEST(CspPolicy, DecisionEqualityHelpers)
{
    EXPECT_TRUE(Decision::forward(3).valid());
    EXPECT_TRUE(Decision::backward(3).valid());
    EXPECT_FALSE(Decision::none().valid());
    EXPECT_NE(Decision::forward(3), Decision::backward(3));
}

} // namespace
} // namespace naspipe
