/**
 * @file
 * Task model tests.
 */

#include <gtest/gtest.h>

#include "schedule/task.h"

namespace naspipe {
namespace {

TEST(Task, Identity)
{
    Task a{TaskType::Forward, 3, 2};
    Task b{TaskType::Forward, 3, 2};
    Task c{TaskType::Backward, 3, 2};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Task, Ordering)
{
    Task fwd{TaskType::Forward, 1, 0};
    Task bwd{TaskType::Backward, 1, 0};
    EXPECT_LT(fwd, bwd);  // Forward enumerates before Backward
    Task later{TaskType::Forward, 2, 0};
    EXPECT_LT(fwd, later);
}

TEST(Task, ToString)
{
    Task t{TaskType::Backward, 7, 3};
    EXPECT_EQ(t.toString(), "bwd(SN7@3)");
    Task f{TaskType::Forward, 0, 0};
    EXPECT_EQ(f.toString(), "fwd(SN0@0)");
}

TEST(TaskTypeName, Named)
{
    EXPECT_STREQ(taskTypeName(TaskType::Forward), "fwd");
    EXPECT_STREQ(taskTypeName(TaskType::Backward), "bwd");
}

} // namespace
} // namespace naspipe
