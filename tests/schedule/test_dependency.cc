/**
 * @file
 * DependencyTracker tests (Algorithm 2's bookkeeping).
 */

#include <gtest/gtest.h>

#include "schedule/dependency.h"

namespace naspipe {
namespace {

Subnet
sn(SubnetId id, std::vector<std::uint16_t> choices)
{
    return Subnet(id, std::move(choices));
}

TEST(DependencyTracker, RegisterInOrder)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0, 1}));
    t.registerSubnet(sn(1, {1, 0}));
    EXPECT_TRUE(t.knows(0));
    EXPECT_TRUE(t.knows(1));
    EXPECT_THROW(t.registerSubnet(sn(5, {0, 0})), std::logic_error);
}

TEST(DependencyTracker, BlockedBySharedLayer)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0, 1, 2}));
    t.registerSubnet(sn(1, {0, 2, 1}));  // shares block 0
    EXPECT_FALSE(t.satisfied(t.subnet(1), 0, 0));
    EXPECT_TRUE(t.satisfied(t.subnet(1), 1, 2));
    EXPECT_EQ(t.firstBlocker(t.subnet(1), 0, 2), 0);
}

TEST(DependencyTracker, FinishingUnblocks)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0, 1}));
    t.registerSubnet(sn(1, {0, 1}));
    EXPECT_FALSE(t.satisfied(t.subnet(1), 0, 1));
    t.markFinished(0);
    EXPECT_TRUE(t.satisfied(t.subnet(1), 0, 1));
}

TEST(DependencyTracker, LowestBlockerReported)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0, 9}));
    t.registerSubnet(sn(1, {9, 1}));
    t.registerSubnet(sn(2, {0, 1}));  // blocked by both 0 and 1
    EXPECT_EQ(t.firstBlocker(t.subnet(2), 0, 1), 0);
    t.markFinished(0);
    EXPECT_EQ(t.firstBlocker(t.subnet(2), 0, 1), 1);
}

TEST(DependencyTracker, EliminationAdvancesFrontier)
{
    DependencyTracker t;
    for (int i = 0; i < 4; i++)
        t.registerSubnet(sn(i, {static_cast<std::uint16_t>(i)}));
    // Finish out of order: 1 first, frontier stays.
    t.markFinished(1);
    EXPECT_EQ(t.frontier(), 0);
    EXPECT_EQ(t.finishedCount(), 1u);
    t.markFinished(0);
    // 0 and 1 both done: frontier jumps to 2 and both are dropped.
    EXPECT_EQ(t.frontier(), 2);
    EXPECT_EQ(t.finishedCount(), 0u);
    EXPECT_EQ(t.retained(), 2u);
    EXPECT_FALSE(t.knows(0));
}

TEST(DependencyTracker, FinishedQueryCoversEliminated)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0}));
    t.markFinished(0);
    EXPECT_TRUE(t.finished(0));
    EXPECT_FALSE(t.finished(1));
}

TEST(DependencyTracker, DoubleFinishPanics)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0}));
    t.registerSubnet(sn(1, {1}));
    t.markFinished(1);
    EXPECT_THROW(t.markFinished(1), std::logic_error);
}

TEST(DependencyTracker, SatisfiedAssumingPreAddsToFinished)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0, 1}));
    t.registerSubnet(sn(1, {0, 1}));
    EXPECT_FALSE(t.satisfied(t.subnet(1), 0, 1));
    // Algorithm 3 pre-adds the received backward.
    EXPECT_TRUE(t.satisfiedAssuming(t.subnet(1), 0, 1, 0));
}

TEST(DependencyTracker, EmptyRangeIsAlwaysSatisfied)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0, 1}));
    t.registerSubnet(sn(1, {0, 1}));
    // lo > hi encodes an empty stage range.
    EXPECT_TRUE(t.satisfied(t.subnet(1), 1, 0));
}

TEST(DependencyTracker, SkipAwareExemptsParameterFreeLayers)
{
    SearchSpace space("s", SpaceFamily::Nlp, 2, 4, 3, 0.4);
    DependencyTracker t(&space);
    // Both pick the skip candidate (choice 0) in block 0 and distinct
    // parameterized candidates elsewhere: no dependency.
    t.registerSubnet(sn(0, {0, 1}));
    t.registerSubnet(sn(1, {0, 2}));
    EXPECT_TRUE(t.satisfied(t.subnet(1), 0, 1));
    // A shared *parameterized* candidate still blocks.
    t.registerSubnet(sn(2, {1, 2}));
    EXPECT_FALSE(t.satisfied(t.subnet(2), 0, 1));
}

TEST(DependencyTracker, ResetRestoresEmptyState)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {0}));
    t.markFinished(0);
    t.reset();
    EXPECT_EQ(t.frontier(), 0);
    EXPECT_EQ(t.retained(), 0u);
    t.registerSubnet(sn(0, {0}));  // IDs restart from 0
    EXPECT_TRUE(t.knows(0));
}

TEST(DependencyTracker, TransitiveChainsResolveInOrder)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {5, 0}));
    t.registerSubnet(sn(1, {5, 1}));  // blocked by 0 (block 0)
    t.registerSubnet(sn(2, {5, 1}));  // blocked by 0 and 1
    EXPECT_FALSE(t.satisfied(t.subnet(1), 0, 1));
    EXPECT_FALSE(t.satisfied(t.subnet(2), 0, 1));
    t.markFinished(0);
    EXPECT_TRUE(t.satisfied(t.subnet(1), 0, 1));
    EXPECT_FALSE(t.satisfied(t.subnet(2), 0, 1));
    t.markFinished(1);
    EXPECT_TRUE(t.satisfied(t.subnet(2), 0, 1));
}

} // namespace
} // namespace naspipe
