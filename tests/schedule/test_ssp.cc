/**
 * @file
 * SSP (bounded staleness) policy tests.
 */

#include <gtest/gtest.h>

#include "mock_stage.h"
#include "schedule/ssp_scheduler.h"

namespace naspipe {
namespace {

Subnet
sn(SubnetId id, std::vector<std::uint16_t> choices)
{
    return Subnet(id, std::move(choices));
}

TEST(SspPolicy, ZeroStalenessMatchesStrictCheck)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {0, 1}));  // blocked by 0
    stage.queueFwd(1);
    SspPolicy strict(0);
    EXPECT_EQ(strict.pick(stage), Decision::none());
    stage.finish(0);
    EXPECT_EQ(strict.pick(stage), Decision::forward(1));
}

TEST(SspPolicy, StalenessToleratesRecentBlockers)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {0, 1}));  // blocker at distance 1
    stage.queueFwd(1);
    SspPolicy tolerant(1);
    // The blocker is within the staleness bound: stale read allowed.
    EXPECT_EQ(tolerant.pick(stage), Decision::forward(1));
}

TEST(SspPolicy, DistantBlockersStillBlock)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {7, 7}));
    stage.addSubnet(sn(1, {1, 1}));
    stage.addSubnet(sn(2, {2, 2}));
    stage.addSubnet(sn(3, {7, 3}));  // blocked by 0 (distance 3)
    stage.queueFwd(3);
    SspPolicy tolerant(2);
    EXPECT_EQ(tolerant.pick(stage), Decision::none());
    SspPolicy lax(3);
    EXPECT_EQ(lax.pick(stage), Decision::forward(3));
}

TEST(SspPolicy, BackwardFirst)
{
    MockStage stage(0, 2, 0, 1);
    stage.addSubnet(sn(0, {0, 0}));
    stage.addSubnet(sn(1, {1, 1}));
    stage.queueFwd(1);
    stage.queueBwd(0);
    SspPolicy policy(4);
    EXPECT_EQ(policy.pick(stage), Decision::backward(0));
}

TEST(SspPolicy, NegativeStalenessPanics)
{
    EXPECT_THROW(SspPolicy(-1), std::logic_error);
}

TEST(SspSystem, ModelConfiguredAsNaspipeWithSspPolicy)
{
    SystemModel m = sspSystem(3);
    EXPECT_EQ(m.policy, PolicyKind::Ssp);
    EXPECT_EQ(m.staleness, 3);
    EXPECT_EQ(m.memory, MemoryMode::PredictivePrefetch);
    EXPECT_STREQ(m.syncName(), "SSP");
    EXPECT_EQ(m.name, "SSP(s=3)");
    EXPECT_FALSE(m.preservesDependencies());
    EXPECT_STREQ(makePolicy(m)->name(), "ssp");
}

TEST(DependencyTracker, SatisfiedWithStaleness)
{
    DependencyTracker t;
    t.registerSubnet(sn(0, {5, 5}));
    t.registerSubnet(sn(1, {5, 1}));
    t.registerSubnet(sn(2, {5, 2}));
    // SN2 blocked by SN0 at distance 2 and SN1 at distance 1.
    EXPECT_FALSE(t.satisfiedWithStaleness(t.subnet(2), 0, 1, 0));
    EXPECT_FALSE(t.satisfiedWithStaleness(t.subnet(2), 0, 1, 1));
    EXPECT_TRUE(t.satisfiedWithStaleness(t.subnet(2), 0, 1, 2));
    t.markFinished(0);
    EXPECT_TRUE(t.satisfiedWithStaleness(t.subnet(2), 0, 1, 1));
}

} // namespace
} // namespace naspipe
