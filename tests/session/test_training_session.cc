/**
 * @file
 * TrainingSession under a mock ExecutionBackend — the coordinator
 * core in isolation. The tests pin the injection-gate *ordering*
 * (budget, in-flight window, checkpoint drain barrier, backend veto,
 * feedback lag), the feedback-lag-exact score delivery, the drained
 * checkpoint cadence and restore/replay, and the admissible()/pump()
 * agreement contract the serve layer's one-subnet-per-slot admission
 * depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "session/training_session.h"
#include "supernet/search_space.h"

namespace naspipe {
namespace {

/** Records every backend callback; canAdmit is a togglable veto
 *  whose consultations are counted (the gate-ordering probe). */
class MockBackend : public ExecutionBackend
{
  public:
    bool canAdmit(SubnetId next) const override
    {
        (void)next;
        canAdmitCalls++;
        return !veto;
    }
    void admit(SubnetId id) override { admitted.push_back(id); }
    void restoreCompleted(SubnetId id) override
    {
        restored.push_back(id);
    }

    bool veto = false;
    mutable int canAdmitCalls = 0;
    std::vector<SubnetId> admitted;
    std::vector<SubnetId> restored;
};

RuntimeConfig
config(int steps, int window)
{
    RuntimeConfig c;
    c.system = naspipeSystem();
    c.system.maxInflight = window;  // pin the in-flight gate
    c.numStages = 2;
    c.totalSubnets = steps;
    c.seed = 7;
    return c;
}

struct Fixture {
    Fixture(const SearchSpace &space, const RuntimeConfig &c)
        : session(space, c)
    {
        session.attach(&backend);
        EXPECT_TRUE(session.initRun());
    }
    /** Complete subnet @p id with a synthetic loss. */
    bool complete(SubnetId id)
    {
        return session.recordCompletion(
            id, 0.5f + 0.01f * static_cast<float>(id),
            0.1 * (id + 1));
    }
    MockBackend backend;
    TrainingSession session;
};

TEST(TrainingSessionCore, PumpFillsTheInflightWindow)
{
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(8, 3);
    Fixture f(space, c);

    EXPECT_TRUE(f.session.admissible());
    EXPECT_EQ(f.session.pump(), 3);
    EXPECT_EQ(f.backend.admitted,
              (std::vector<SubnetId>{0, 1, 2}));
    EXPECT_EQ(f.session.inflight(), 3);
    EXPECT_FALSE(f.session.admissible());
    EXPECT_EQ(f.session.pump(), 0);

    f.complete(0);
    EXPECT_TRUE(f.session.admissible());
    EXPECT_EQ(f.session.pump(), 1);
    EXPECT_EQ(f.backend.admitted.back(), 3);
}

TEST(TrainingSessionCore, PumpMaxCountInjectsOneSlotAtATime)
{
    // The serve layer's WRR admits one subnet per slot: pump(1) must
    // inject exactly one and preserve the sequence order.
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(6, 8);
    Fixture f(space, c);

    for (int i = 0; i < 6; i++)
        EXPECT_EQ(f.session.pump(1), 1) << "slot " << i;
    EXPECT_EQ(f.session.pump(1), 0);  // budget exhausted
    EXPECT_EQ(f.backend.admitted,
              (std::vector<SubnetId>{0, 1, 2, 3, 4, 5}));
}

TEST(TrainingSessionCore, VetoGateOrdering)
{
    // canAdmit sits AFTER the budget / in-flight / barrier gates and
    // BEFORE the feedback-lag gate: when an earlier gate blocks, the
    // backend is never consulted.
    SearchSpace space = makeSpaceByName("NLP.c1");

    {  // in-flight window full -> no consultation
        RuntimeConfig c = config(8, 2);
        Fixture f(space, c);
        EXPECT_EQ(f.session.pump(), 2);
        f.backend.canAdmitCalls = 0;
        EXPECT_FALSE(f.session.admissible());
        EXPECT_EQ(f.session.pump(), 0);
        EXPECT_EQ(f.backend.canAdmitCalls, 0);
    }
    {  // injection budget exhausted -> no consultation
        RuntimeConfig c = config(2, 8);
        Fixture f(space, c);
        EXPECT_EQ(f.session.pump(), 2);
        f.complete(0);
        f.complete(1);
        f.backend.canAdmitCalls = 0;
        EXPECT_FALSE(f.session.admissible());
        EXPECT_EQ(f.backend.canAdmitCalls, 0);
    }
    {  // checkpoint drain barrier -> no consultation
        RuntimeConfig c = config(8, 8);
        c.ckptInterval = 2;
        Fixture f(space, c);
        EXPECT_EQ(f.session.pump(), 2);  // stops at the barrier
        f.backend.canAdmitCalls = 0;
        EXPECT_FALSE(f.session.admissible());
        EXPECT_EQ(f.backend.canAdmitCalls, 0);
    }
    {  // otherwise the veto IS consulted, and blocks the draw
        RuntimeConfig c = config(8, 8);
        Fixture f(space, c);
        f.backend.veto = true;
        EXPECT_FALSE(f.session.admissible());
        EXPECT_GT(f.backend.canAdmitCalls, 0);
        EXPECT_EQ(f.session.pump(), 0);
        EXPECT_TRUE(f.backend.admitted.empty());
        // Releasing the veto resumes the exact sequence from 0.
        f.backend.veto = false;
        EXPECT_EQ(f.session.pump(), 8);
        EXPECT_EQ(f.backend.admitted.front(), 0);
    }
}

TEST(TrainingSessionCore, FeedbackLagGatesInjectionOnDeliveredScores)
{
    // lag = 3: subnet i may only be drawn once scores for every
    // subnet <= i-3 are *delivered* — delivery is in sequence-ID
    // order, so an out-of-order completion unlocks nothing until the
    // gap fills.
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(8, 16);
    c.feedbackLag = 3;
    Fixture f(space, c);
    EXPECT_EQ(f.session.effectiveFeedbackLag(), 3);

    EXPECT_EQ(f.session.pump(), 3);  // 0,1,2; 3 needs score(0)
    EXPECT_FALSE(f.session.admissible());

    f.complete(0);
    EXPECT_EQ(f.session.pump(), 1);  // 3 unlocked
    EXPECT_EQ(f.backend.admitted.back(), 3);

    f.complete(2);  // out of order: score(1) still missing
    EXPECT_FALSE(f.session.admissible());
    EXPECT_EQ(f.session.pump(), 0);

    f.complete(1);  // gap filled: scores 1 and 2 deliver in order
    EXPECT_EQ(f.session.pump(), 2);  // 4 and 5
    EXPECT_EQ(f.backend.admitted.back(), 5);

    f.complete(3);
    f.complete(4);
    f.complete(5);
    EXPECT_EQ(f.session.pump(), 2);  // 6 and 7: budget ends the run
    EXPECT_FALSE(f.session.admissible());
    f.complete(6);
    f.complete(7);
    EXPECT_EQ(f.session.finished(), 8);
}

TEST(TrainingSessionCore, CheckpointCadenceDrainsThePipeline)
{
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(8, 16);
    c.ckptInterval = 4;
    Fixture f(space, c);
    ASSERT_TRUE(f.session.ckptEnabled());
    EXPECT_EQ(f.session.nextCkptAt(), 4);

    // Injection pauses at the barrier even though the window (16)
    // has room, so finished == barrier implies inflight == 0.
    EXPECT_EQ(f.session.pump(), 4);
    EXPECT_FALSE(f.complete(0));
    EXPECT_FALSE(f.complete(1));
    EXPECT_FALSE(f.complete(2));
    EXPECT_TRUE(f.complete(3));  // the drained barrier
    EXPECT_EQ(f.session.inflight(), 0);

    RunCheckpoint ckpt = f.session.buildCheckpoint(1.0, 0.5);
    EXPECT_EQ(ckpt.completed, 4u);
    f.session.commitCheckpoint(ckpt);
    EXPECT_EQ(f.session.nextCkptAt(), 8);

    EXPECT_EQ(f.session.pump(), 4);
    EXPECT_FALSE(f.complete(4));
    EXPECT_FALSE(f.complete(5));
    EXPECT_FALSE(f.complete(6));
    EXPECT_TRUE(f.complete(7));
    EXPECT_EQ(f.session.finished(), 8);
}

TEST(TrainingSessionCore, RestoreReplaysWithoutReexecution)
{
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(8, 16);
    c.ckptInterval = 4;

    Fixture producer(space, c);
    EXPECT_EQ(producer.session.pump(), 4);
    for (SubnetId id = 0; id < 3; id++)
        producer.complete(id);
    ASSERT_TRUE(producer.complete(3));
    RunCheckpoint ckpt = producer.session.buildCheckpoint(1.0, 0.5);
    producer.session.commitCheckpoint(ckpt);

    // A fresh session restores the drained state: the backend sees
    // restoreCompleted (never admit) for every restored subnet, and
    // injection resumes at exactly subnet 4.
    Fixture resumed(space, c);
    ASSERT_TRUE(resumed.session.restore(ckpt));
    EXPECT_EQ(resumed.backend.restored,
              (std::vector<SubnetId>{0, 1, 2, 3}));
    EXPECT_TRUE(resumed.backend.admitted.empty());
    EXPECT_EQ(resumed.session.finished(), 4);
    EXPECT_EQ(resumed.session.injected(), 4);
    EXPECT_EQ(resumed.session.inflight(), 0);
    EXPECT_EQ(resumed.session.nextCkptAt(), 8);

    EXPECT_EQ(resumed.session.pump(), 4);
    EXPECT_EQ(resumed.backend.admitted,
              (std::vector<SubnetId>{4, 5, 6, 7}));
}

TEST(TrainingSessionCore, AdmissibleAgreesWithPumpOne)
{
    // The contract the serve scheduler leans on: admissible() is
    // true exactly when pump(1) would inject. Walked across a run
    // that exercises every gate (narrow window, lag, checkpoints).
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(10, 2);
    c.feedbackLag = 2;
    c.ckptInterval = 3;
    Fixture f(space, c);

    SubnetId oldest = 0;
    int guard = 0;
    while (f.session.finished() < f.session.totalSubnets()) {
        ASSERT_LT(guard++, 200) << "run did not converge";
        bool could = f.session.admissible();
        int got = f.session.pump(1);
        EXPECT_EQ(could, got == 1)
            << "injected=" << f.session.injected()
            << " finished=" << f.session.finished();
        if (got == 1)
            continue;
        // Blocked: retire the oldest outstanding subnet, taking the
        // drained checkpoint when that completion is a barrier.
        ASSERT_LT(static_cast<int>(oldest), f.session.injected());
        if (f.complete(oldest++)) {
            RunCheckpoint ckpt =
                f.session.buildCheckpoint(1.0, 0.5);
            f.session.commitCheckpoint(ckpt);
        }
    }
    EXPECT_EQ(f.session.finished(), 10);
    EXPECT_FALSE(f.session.admissible());
}

} // namespace
} // namespace naspipe
