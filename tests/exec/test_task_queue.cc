/**
 * @file
 * BoundedTaskQueue unit tests: FIFO discipline, capacity
 * backpressure, and multi-producer ordering.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/task_queue.h"

namespace naspipe {
namespace {

TEST(TaskQueue, FifoOrder)
{
    BoundedTaskQueue<int> q(8);
    for (int i = 0; i < 5; i++)
        q.push(i);
    EXPECT_EQ(q.size(), 5u);
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(q.pop(), i);
    EXPECT_TRUE(q.empty());
}

TEST(TaskQueue, TryPushRespectsCapacity)
{
    BoundedTaskQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.tryPush(3));
}

TEST(TaskQueue, TryPopOnEmpty)
{
    BoundedTaskQueue<int> q(2);
    int out = -1;
    EXPECT_FALSE(q.tryPop(out));
    q.push(7);
    EXPECT_TRUE(q.tryPop(out));
    EXPECT_EQ(out, 7);
}

TEST(TaskQueue, CapacityFloorIsOne)
{
    BoundedTaskQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_FALSE(q.tryPush(2));
}

TEST(TaskQueue, DrainIntoMovesEverything)
{
    BoundedTaskQueue<int> q(8);
    for (int i = 0; i < 6; i++)
        q.push(i);
    std::vector<int> out;
    EXPECT_EQ(q.drainInto(out), 6u);
    EXPECT_TRUE(q.empty());
    ASSERT_EQ(out.size(), 6u);
    for (int i = 0; i < 6; i++)
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(q.drainInto(out), 0u);
}

TEST(TaskQueue, BlockingPushUnblocksOnPop)
{
    BoundedTaskQueue<int> q(1);
    q.push(1);
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        q.push(2);  // blocks until the consumer pops
        pushed.store(true);
    });
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);  // pop blocks until the producer lands
    producer.join();
    EXPECT_TRUE(pushed.load());
}

TEST(TaskQueue, MultiProducerPreservesPerProducerOrder)
{
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 200;
    BoundedTaskQueue<int> q(16);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; p++) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; i++)
                q.push(p * kPerProducer + i);
        });
    }
    std::vector<int> lastSeen(kProducers, -1);
    for (int n = 0; n < kProducers * kPerProducer; n++) {
        int v = q.pop();
        int p = v / kPerProducer;
        int i = v % kPerProducer;
        EXPECT_GT(i, lastSeen[static_cast<std::size_t>(p)]);
        lastSeen[static_cast<std::size_t>(p)] = i;
    }
    for (auto &t : producers)
        t.join();
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace naspipe
