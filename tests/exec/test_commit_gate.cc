/**
 * @file
 * CommitGate unit tests: the causal-chain protocol in isolation.
 */

#include <gtest/gtest.h>

#include <thread>

#include "exec/commit_gate.h"

namespace naspipe {
namespace {

TEST(CommitGate, FirstActivatorIsImmediatelyReadable)
{
    CommitGate gate;
    gate.registerActivation(100, 3);
    gate.registerActivation(100, 5);
    EXPECT_TRUE(gate.readable(100, 3));
    EXPECT_FALSE(gate.readable(100, 5));
}

TEST(CommitGate, CommitUnlocksTheNextActivator)
{
    CommitGate gate;
    gate.registerActivation(100, 0);
    gate.registerActivation(100, 1);
    gate.registerActivation(100, 2);
    EXPECT_FALSE(gate.readable(100, 1));
    gate.commit(100, 0);
    EXPECT_TRUE(gate.readable(100, 1));
    EXPECT_FALSE(gate.readable(100, 2));
    gate.commit(100, 1);
    EXPECT_TRUE(gate.readable(100, 2));
}

TEST(CommitGate, LayersAreIndependent)
{
    CommitGate gate;
    gate.registerActivation(1, 0);
    gate.registerActivation(1, 1);
    gate.registerActivation(2, 1);
    EXPECT_EQ(gate.layers(), 2u);
    // SN1 leads layer 2's chain even though it trails layer 1's.
    EXPECT_TRUE(gate.readable(2, 1));
    EXPECT_FALSE(gate.readable(1, 1));
}

TEST(CommitGate, ResolvedClaimsPollWithoutTheTable)
{
    CommitGate gate;
    gate.registerActivation(7, 10);
    gate.registerActivation(7, 20);
    CommitGate::Claim early = gate.resolve(7, 10);
    CommitGate::Claim late = gate.resolve(7, 20);
    EXPECT_EQ(early.rank, 0u);
    EXPECT_EQ(late.rank, 1u);
    EXPECT_TRUE(gate.readable(early));
    EXPECT_FALSE(gate.readable(late));
    gate.commit(early);
    EXPECT_TRUE(gate.readable(late));
}

TEST(CommitGate, CountsCommitsAndPerLayerProgress)
{
    CommitGate gate;
    gate.registerActivation(1, 0);
    gate.registerActivation(1, 1);
    gate.registerActivation(2, 0);
    EXPECT_EQ(gate.commits(), 0u);
    EXPECT_EQ(gate.committedOf(1), 0u);
    gate.commit(1, 0);
    gate.commit(2, 0);
    gate.commit(1, 1);
    EXPECT_EQ(gate.commits(), 3u);
    EXPECT_EQ(gate.committedOf(1), 2u);
    EXPECT_EQ(gate.committedOf(2), 1u);
    EXPECT_EQ(gate.committedOf(999), 0u);  // unregistered layer
}

TEST(CommitGate, CommitHookFires)
{
    CommitGate gate;
    gate.registerActivation(1, 0);
    int fired = 0;
    gate.onCommit([&fired] { fired++; });
    gate.commit(1, 0);
    EXPECT_EQ(fired, 1);
}

TEST(CommitGate, WaitReadableBlocksUntilCommit)
{
    CommitGate gate;
    gate.registerActivation(1, 0);
    gate.registerActivation(1, 1);
    CommitGate::Claim late = gate.resolve(1, 1);
    std::thread committer([&gate] {
        gate.commit(1, 0);
    });
    gate.waitReadable(late);  // must return once SN0 commits
    EXPECT_TRUE(gate.readable(late));
    committer.join();
}

} // namespace
} // namespace naspipe
