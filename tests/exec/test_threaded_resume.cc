/**
 * @file
 * Threaded checkpoint/resume (the session layer's acceptance test).
 *
 * Drained-barrier checkpoints make the saved state a pure function of
 * the completed-subnet count, so a checkpoint is executor-agnostic:
 * a threaded run resumed from a mid-run checkpoint must finish with
 * weights bitwise identical to an uninterrupted run — on either
 * executor — and checkpoints written by the simulator must restore on
 * threads and vice versa. Checked on the paper spaces NLP.c1 and
 * CV.c1 across 1/2/4/8 workers, with every resumed threaded run
 * executing under the CspOracle.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/parallel_runtime.h"
#include "verify/csp_oracle.h"

namespace naspipe {
namespace {

constexpr int kSteps = 32;

// Interval 5 over 32 steps leaves barriers at 5..30: the last
// on-disk checkpoint (completed = 30) is a genuine mid-run state,
// so resume actually replays history and then trains SN30, SN31.
constexpr int kCkptInterval = 5;

RuntimeConfig
config(int stages, int steps)
{
    RuntimeConfig c;
    c.system = naspipeSystem();
    c.numStages = stages;
    c.totalSubnets = steps;
    c.seed = 7;
    return c;
}

/** A unique scratch checkpoint path, removed on destruction. */
class ScratchCkpt
{
  public:
    explicit ScratchCkpt(const std::string &tag)
        : _path(::testing::TempDir() + "naspipe_resume_" + tag +
                ".ckpt")
    {
        std::remove(_path.c_str());
    }
    ~ScratchCkpt() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

/** Everything Definition 1 compares, from either executor. */
struct Fingerprint {
    std::uint64_t weights = 0;
    std::map<SubnetId, float> losses;
    SubnetId bestSubnet = -1;
    int causalViolations = -1;
};

Fingerprint
fingerprint(const RunResult &result)
{
    EXPECT_FALSE(result.failed) << result.error;
    EXPECT_FALSE(result.oom);
    Fingerprint f;
    f.weights = result.supernetHash;
    f.losses = result.losses;
    f.bestSubnet = result.bestSubnet;
    f.causalViolations = result.metrics.causalViolations;
    return f;
}

/** Run with mid-run checkpoints persisted to @p path. */
RunResult
runWithCkpt(const SearchSpace &space, RuntimeConfig c,
            const std::string &path, bool threaded)
{
    c.ckptInterval = kCkptInterval;
    c.ckptPath = path;
    return threaded ? runTrainingThreaded(space, c)
                    : runTraining(space, c);
}

/** Resume from @p path on threads, audited by the CspOracle. */
RunResult
resumeThreadedAudited(const SearchSpace &space, RuntimeConfig c,
                      const std::string &path)
{
    c.resumePath = path;
    CspOracle oracle;
    c.commitObserver = [&oracle](std::uint64_t layerKey,
                                 SubnetId subnet, std::size_t rank,
                                 int stage) {
        oracle.observeCommit(layerKey, subnet, rank, stage);
    };
    RunResult result = runTrainingThreaded(space, c);
    EXPECT_FALSE(result.failed) << result.error;
    if (!result.failed) {
        EXPECT_TRUE(oracle.auditLog(result.store->accessLog()));
        EXPECT_TRUE(oracle.ok()) << oracle.report();
        EXPECT_GT(oracle.observedCommits(), 0u);
    }
    return result;
}

void
expectResumeEquivalent(const std::string &spaceName, int workers)
{
    SCOPED_TRACE(spaceName + " with " + std::to_string(workers) +
                 " workers");
    SearchSpace space = makeSpaceByName(spaceName);
    RuntimeConfig c = config(workers, kSteps);

    // Baselines: uninterrupted runs on both executors.
    Fingerprint sim = fingerprint(runTraining(space, c));
    Fingerprint thr = fingerprint(runTrainingThreaded(space, c));
    ASSERT_EQ(sim.weights, thr.weights);

    // A threaded run that checkpoints along the way must itself be
    // bitwise unaffected by the checkpoint barriers...
    ScratchCkpt scratch(spaceName + "_w" + std::to_string(workers));
    RunResult ckptRun =
        runWithCkpt(space, c, scratch.path(), /*threaded=*/true);
    Fingerprint withCkpt = fingerprint(ckptRun);
    EXPECT_GE(ckptRun.metrics.checkpointsWritten,
              kSteps / kCkptInterval);
    EXPECT_EQ(withCkpt.weights, thr.weights);
    EXPECT_EQ(withCkpt.losses, thr.losses);

    // ...and resuming from its last (mid-run) checkpoint must land on
    // the same weights as never having stopped, on either executor.
    Fingerprint resumed = fingerprint(
        resumeThreadedAudited(space, c, scratch.path()));
    EXPECT_EQ(resumed.causalViolations, 0);
    EXPECT_EQ(resumed.weights, thr.weights);
    EXPECT_EQ(resumed.weights, sim.weights);
    EXPECT_EQ(resumed.losses, thr.losses);
    EXPECT_EQ(resumed.bestSubnet, thr.bestSubnet);
}

TEST(ThreadedResume, NlpC1BitwiseEqualAcrossWorkerCounts)
{
    for (int workers : {1, 2, 4, 8})
        expectResumeEquivalent("NLP.c1", workers);
}

TEST(ThreadedResume, CvC1BitwiseEqualAcrossWorkerCounts)
{
    for (int workers : {1, 2, 4, 8})
        expectResumeEquivalent("CV.c1", workers);
}

TEST(ThreadedResume, SimCheckpointRestoresOnThreads)
{
    // Cross-executor, direction 1: the simulator writes the
    // checkpoint, the threaded executor resumes from it.
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(4, kSteps);
    Fingerprint baseline = fingerprint(runTraining(space, c));

    ScratchCkpt scratch("sim_to_thr");
    fingerprint(
        runWithCkpt(space, c, scratch.path(), /*threaded=*/false));
    Fingerprint resumed = fingerprint(
        resumeThreadedAudited(space, c, scratch.path()));
    EXPECT_EQ(resumed.weights, baseline.weights);
    EXPECT_EQ(resumed.losses, baseline.losses);
}

TEST(ThreadedResume, ThreadsCheckpointRestoresOnSimulator)
{
    // Cross-executor, direction 2: threads write, simulator resumes.
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(4, kSteps);
    Fingerprint baseline = fingerprint(runTraining(space, c));

    ScratchCkpt scratch("thr_to_sim");
    fingerprint(
        runWithCkpt(space, c, scratch.path(), /*threaded=*/true));
    RuntimeConfig r = c;
    r.resumePath = scratch.path();
    Fingerprint resumed = fingerprint(runTraining(space, r));
    EXPECT_EQ(resumed.weights, baseline.weights);
    EXPECT_EQ(resumed.losses, baseline.losses);
}

TEST(ThreadedResume, ResumedRunReportsRealContextCacheStats)
{
    // The ported context manager must do real work on the resumed
    // path too: a genuine hit rate (not the old N/A placeholder) and
    // a peak resident set within the configured budget.
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(4, kSteps);

    ScratchCkpt scratch("cache_stats");
    runWithCkpt(space, c, scratch.path(), /*threaded=*/true);
    RunResult resumed =
        resumeThreadedAudited(space, c, scratch.path());
    ASSERT_FALSE(resumed.failed) << resumed.error;

    ASSERT_TRUE(resumed.metrics.cacheHitRate.has_value());
    EXPECT_GT(*resumed.metrics.cacheHitRate, 0.0);
    EXPECT_GT(resumed.metrics.cacheBudgetBytes, 0u);
    EXPECT_GT(resumed.metrics.cachePeakBytes, 0u);
    EXPECT_LE(resumed.metrics.cachePeakBytes,
              resumed.metrics.cacheBudgetBytes);
}

TEST(ThreadedResume, MissingCheckpointFailsCleanly)
{
    SearchSpace space = makeSpaceByName("NLP.c1");
    RuntimeConfig c = config(4, kSteps);
    c.resumePath = ::testing::TempDir() + "naspipe_no_such.ckpt";
    RunResult result = runTrainingThreaded(space, c);
    EXPECT_TRUE(result.failed);
    EXPECT_NE(result.error.find("cannot resume"), std::string::npos)
        << result.error;
}

} // namespace
} // namespace naspipe
