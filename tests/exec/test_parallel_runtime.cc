/**
 * @file
 * ParallelRuntime unit tests: support matrix, metrics surface, and
 * small end-to-end runs on threads.
 */

#include <gtest/gtest.h>

#include "exec/parallel_runtime.h"
#include "schedule/scheduler.h"

namespace naspipe {
namespace {

RuntimeConfig
config(int stages, int steps)
{
    RuntimeConfig c;
    c.system = naspipeSystem();
    c.numStages = stages;
    c.totalSubnets = steps;
    c.seed = 7;
    return c;
}

TEST(ParallelRuntime, SupportsCspOnly)
{
    std::string why;
    EXPECT_TRUE(ParallelRuntime::supported(config(4, 8), &why)) << why;
    EXPECT_TRUE(
        ParallelRuntime::supported([&] {
            RuntimeConfig c = config(4, 8);
            c.system = naspipeWithoutPredictor();
            return c;
        }()));

    RuntimeConfig bsp = config(4, 8);
    bsp.system = gpipeSystem();
    EXPECT_FALSE(ParallelRuntime::supported(bsp, &why));
    EXPECT_FALSE(why.empty());

    RuntimeConfig asp = config(4, 8);
    asp.system = pipedreamSystem();
    EXPECT_FALSE(ParallelRuntime::supported(asp));
}

TEST(ParallelRuntime, SupportsFaultInjection)
{
    // Fault injection went executor-agnostic with the supervision
    // layer: a fault plan is no longer a reason to reject threads.
    std::string why;
    RuntimeConfig faulty = config(4, 8);
    faulty.faults.push_back(FaultSpec{});
    EXPECT_TRUE(ParallelRuntime::supported(faulty, &why)) << why;
}

TEST(ParallelRuntime, RejectionReasonsNameTheFeature)
{
    // The reason strings are a user-facing contract: the CLI embeds
    // them verbatim in its exit-2 diagnostics.
    std::string why;

    RuntimeConfig bsp = config(4, 8);
    bsp.system = gpipeSystem();
    EXPECT_FALSE(ParallelRuntime::supported(bsp, &why));
    EXPECT_EQ(why,
              "threaded executor requires a CSP system: BSP/ASP "
              "weights depend on the interleaving, which real "
              "threads cannot replay");

    RuntimeConfig stash = config(4, 8);
    stash.system = naspipeSystem();
    stash.system.weightStash = true;
    EXPECT_FALSE(ParallelRuntime::supported(stash, &why));
    EXPECT_EQ(why, "weight stashing is simulator-only");

    RuntimeConfig flush = config(4, 8);
    flush.system = naspipeSystem();
    flush.system.bulkFlush = true;
    EXPECT_FALSE(ParallelRuntime::supported(flush, &why));
    EXPECT_EQ(why, "bulk-flush (BSP) systems are simulator-only");
}

TEST(ParallelRuntime, SupportsCheckpointAndResume)
{
    // Drained-barrier checkpoints are executor-agnostic: the session
    // layer gives the threaded executor the same ckpt/resume path the
    // simulator has.
    std::string why;
    RuntimeConfig ckpt = config(4, 8);
    ckpt.ckptInterval = 4;
    EXPECT_TRUE(ParallelRuntime::supported(ckpt, &why)) << why;

    RuntimeConfig resume = config(4, 8);
    resume.resumePath = "/tmp/nonexistent.ckpt";
    EXPECT_TRUE(ParallelRuntime::supported(resume, &why)) << why;
}

TEST(ParallelRuntime, UnsupportedConfigFailsInsteadOfRunning)
{
    RuntimeConfig bsp = config(2, 4);
    bsp.system = gpipeSystem();
    SearchSpace space("exec-bsp", SpaceFamily::Nlp, 8, 4, 3);
    RunResult result = runTrainingThreaded(space, bsp);
    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.error.empty());
}

TEST(ParallelRuntime, SmallRunCompletesWithSaneMetrics)
{
    SearchSpace space("exec-small", SpaceFamily::Nlp, 10, 4, 4);
    RunResult result = runTrainingThreaded(space, config(3, 16));
    ASSERT_FALSE(result.failed) << result.error;
    ASSERT_FALSE(result.oom);

    const RunMetrics &m = result.metrics;
    EXPECT_EQ(m.finishedSubnets, 16);
    EXPECT_EQ(m.execWorkers, 3);
    EXPECT_GT(m.wallSeconds, 0.0);
    EXPECT_EQ(m.simSeconds, m.wallSeconds);
    EXPECT_GT(m.samplesPerSec, 0.0);
    EXPECT_GT(m.gateCommits, 0u);
    ASSERT_EQ(m.perStageBusySec.size(), 3u);
    ASSERT_EQ(m.perStageGateWaitSec.size(), 3u);
    ASSERT_EQ(m.perStageIdleSec.size(), 3u);
    EXPECT_EQ(m.causalViolations, 0);
    EXPECT_NE(m.supernetHash, 0u);

    ASSERT_EQ(result.sampled.size(), 16u);
    for (std::size_t i = 0; i < result.sampled.size(); i++)
        EXPECT_EQ(result.sampled[i].id(), static_cast<SubnetId>(i));
    EXPECT_EQ(result.losses.size(), 16u);
    EXPECT_GE(result.bestSubnet, 0);
    EXPECT_NE(m.summary().find("threads 3"), std::string::npos);
}

TEST(ParallelRuntime, SingleWorkerDegeneratesToSequential)
{
    SearchSpace space("exec-one", SpaceFamily::Nlp, 8, 4, 3);
    RunResult result = runTrainingThreaded(space, config(1, 8));
    ASSERT_FALSE(result.failed) << result.error;
    EXPECT_EQ(result.metrics.execWorkers, 1);
    EXPECT_EQ(result.metrics.causalViolations, 0);
    EXPECT_EQ(result.metrics.finishedSubnets, 8);
}

TEST(ParallelRuntime, TraceRecordsBothPassKinds)
{
    SearchSpace space("exec-trace", SpaceFamily::Nlp, 8, 4, 3);
    RuntimeConfig c = config(2, 6);
    c.traceEnabled = true;
    RunResult result = runTrainingThreaded(space, c);
    ASSERT_FALSE(result.failed) << result.error;
    ASSERT_TRUE(result.trace);
    bool fwd = false, bwd = false;
    for (const TraceRecord &rec : result.trace->records()) {
        fwd = fwd || rec.kind == TraceKind::Forward;
        bwd = bwd || rec.kind == TraceKind::Backward;
        EXPECT_GE(rec.stage, 0);
        EXPECT_LT(rec.stage, 2);
    }
    EXPECT_TRUE(fwd);
    EXPECT_TRUE(bwd);
}

} // namespace
} // namespace naspipe
