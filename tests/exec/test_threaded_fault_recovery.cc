/**
 * @file
 * Threaded-executor fault tolerance (the supervision layer's
 * acceptance test).
 *
 * A threaded run that loses a stage worker to a fail-stop fault must
 * recover automatically — watchdog detection, rollback to the last
 * drained checkpoint, in-place respawn, CSP-order replay — and finish
 * with weights bitwise identical to a fault-free run. Checked on the
 * paper spaces NLP.c1 and CV.c1 across 2/4/8 workers, under the live
 * CspOracle, and against the simulator driving the *same* fault plan
 * (one seeded plan, one event sequence, both executors).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/parallel_runtime.h"
#include "fault/fault_plan.h"
#include "verify/csp_oracle.h"

namespace naspipe {
namespace {

RuntimeConfig
config(int stages, int steps)
{
    RuntimeConfig c;
    c.system = naspipeSystem();
    c.numStages = stages;
    c.totalSubnets = steps;
    c.seed = 7;
    return c;
}

FaultSpec
crashAt(int step, int stage)
{
    FaultSpec f;
    f.kind = FaultKind::GpuCrash;
    f.atStep = step;
    f.stage = stage;
    return f;
}

/** Threaded run under the full CSP audit (live + post-hoc). */
RunResult
runAudited(const SearchSpace &space, RuntimeConfig c)
{
    CspOracle oracle;
    c.commitObserver = [&oracle](std::uint64_t layerKey,
                                 SubnetId subnet, std::size_t rank,
                                 int stage) {
        oracle.observeCommit(layerKey, subnet, rank, stage);
    };
    c.recoveryObserver = [&oracle](int) { oracle.resetLiveChains(); };
    RunResult result = runTrainingThreaded(space, c);
    EXPECT_FALSE(result.failed) << result.error;
    EXPECT_FALSE(result.oom);
    if (result.failed || !result.store)
        return result;
    EXPECT_TRUE(oracle.auditLog(result.store->accessLog()))
        << oracle.report();
    EXPECT_TRUE(oracle.ok()) << oracle.report();
    return result;
}

TEST(ThreadedFaultRecovery, CrashRecoversBitwiseOnPaperSpaces)
{
    // The acceptance matrix: NLP.c1 and CV.c1 x 2/4/8 workers, crash
    // mid-run, recovered weights == fault-free weights, CSP-clean.
    constexpr int kSteps = 16;
    for (const char *spaceName : {"NLP.c1", "CV.c1"}) {
        SearchSpace space = makeSpaceByName(spaceName);
        for (int workers : {2, 4, 8}) {
            RuntimeConfig clean = config(workers, kSteps);
            RunResult faultFree = runAudited(space, clean);

            RuntimeConfig faulty = clean;
            faulty.ckptInterval = 4;
            faulty.faults.push_back(crashAt(9, workers / 2));
            RunResult recovered = runAudited(space, faulty);

            EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash)
                << spaceName << " x " << workers << " workers";
            EXPECT_EQ(recovered.losses, faultFree.losses);
            EXPECT_EQ(recovered.bestSubnet, faultFree.bestSubnet);
            EXPECT_EQ(recovered.metrics.faultsInjected, 1);
            EXPECT_EQ(recovered.metrics.recoveries, 1);
            // Rollback target is the barrier at 8: exactly one
            // subnet (SN9's completion slot) replays. Deterministic
            // because stragglers are dropped while the world is
            // frozen.
            EXPECT_EQ(recovered.metrics.subnetsReplayed, 1);
            EXPECT_GT(recovered.metrics.recoverySeconds, 0.0);
        }
    }
}

TEST(ThreadedFaultRecovery, SameSeededPlanOnBothExecutors)
{
    // One seeded plan, one event sequence, either backend: the
    // fired-fault counters and the trained weights agree bitwise
    // between the simulator and the threaded executor.
    SearchSpace space = makeSpaceByName("CV.c1");
    std::vector<FaultSpec> plan =
        FaultInjector::randomPlan(21, 3, 14, 2);
    ASSERT_FALSE(plan.empty());

    RuntimeConfig c = config(2, 16);
    c.ckptInterval = 4;
    c.faults = plan;

    RunResult sim = runTraining(space, c);
    ASSERT_FALSE(sim.failed) << sim.error;
    RunResult threads = runAudited(space, c);

    EXPECT_EQ(threads.supernetHash, sim.supernetHash);
    EXPECT_EQ(threads.losses, sim.losses);
    EXPECT_EQ(threads.metrics.faultsInjected,
              sim.metrics.faultsInjected);
    EXPECT_EQ(threads.metrics.recoveries, sim.metrics.recoveries);
    EXPECT_EQ(threads.metrics.subnetsReplayed,
              sim.metrics.subnetsReplayed);
}

TEST(ThreadedFaultRecovery, NoCheckpointRestartsFromZero)
{
    SearchSpace space("tfr-zero", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = config(2, 12);
    clean.batch = 16;
    RunResult faultFree = runAudited(space, clean);

    RuntimeConfig faulty = clean;
    faulty.faults.push_back(crashAt(6, 1));
    RunResult recovered = runAudited(space, faulty);

    EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(recovered.metrics.recoveries, 1);
    // No checkpoint ever drained: the rollback target is subnet 0.
    EXPECT_EQ(recovered.metrics.subnetsReplayed, 6);
    EXPECT_EQ(recovered.metrics.checkpointsWritten, 0);
}

TEST(ThreadedFaultRecovery, TransientFaultsNeedNoRecovery)
{
    SearchSpace space("tfr-transient", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = config(2, 12);
    clean.batch = 16;
    RunResult faultFree = runAudited(space, clean);

    RuntimeConfig faulty = clean;
    FaultSpec stall;
    stall.kind = FaultKind::StageStall;
    stall.atStep = 4;
    stall.stage = 1;
    stall.durationMs = 5.0;
    FaultSpec degrade;
    degrade.kind = FaultKind::LinkDegrade;
    degrade.atStep = 7;
    degrade.stage = 0;
    degrade.durationMs = 5.0;
    faulty.faults = {stall, degrade};
    RunResult perturbed = runAudited(space, faulty);

    // Stall and degrade only stretch wall time; CSP order — hence
    // the weights — is untouched, and nothing rolls back.
    EXPECT_EQ(perturbed.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(perturbed.metrics.faultsInjected, 2);
    EXPECT_EQ(perturbed.metrics.recoveries, 0);
    EXPECT_EQ(perturbed.metrics.subnetsReplayed, 0);
}

TEST(ThreadedFaultRecovery, SurvivesMultipleFailStops)
{
    SearchSpace space("tfr-multi", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig clean = config(3, 14);
    clean.batch = 16;
    RunResult faultFree = runAudited(space, clean);

    RuntimeConfig faulty = clean;
    faulty.ckptInterval = 3;
    faulty.faults.push_back(crashAt(5, 0));
    FaultSpec drop;
    drop.kind = FaultKind::LinkDrop;
    drop.atStep = 10;
    drop.stage = 1;
    faulty.faults.push_back(drop);
    RunResult recovered = runAudited(space, faulty);

    EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(recovered.metrics.faultsInjected, 2);
    EXPECT_EQ(recovered.metrics.recoveries, 2);
}

TEST(ThreadedFaultRecovery, RetriesExhaustedFailsTheRun)
{
    SearchSpace space("tfr-exhaust", SpaceFamily::Nlp, 12, 4, 5);
    RuntimeConfig c = config(2, 12);
    c.batch = 16;
    c.ckptInterval = 4;
    c.recoveryMaxRetries = 0;  // refuse the first retry
    c.faults.push_back(crashAt(6, 1));
    RunResult result = runTrainingThreaded(space, c);
    EXPECT_TRUE(result.failed);
    EXPECT_TRUE(result.retriesExhausted);
    EXPECT_NE(result.error.find("retries exhausted"),
              std::string::npos)
        << result.error;
}

TEST(ThreadedFaultRecovery, EvolutionSamplerSurvivesRecovery)
{
    // Feedback-driven sampling replays deterministically too: the
    // evolution sampler's view is a pure function of (seed,
    // losses-by-ID), which the checkpoint restores.
    SearchSpace space = makeSpaceByName("CV.c1");
    RuntimeConfig clean = config(2, 16);
    clean.evolutionSearch = true;
    RunResult faultFree = runAudited(space, clean);

    RuntimeConfig faulty = clean;
    faulty.ckptInterval = 4;
    faulty.faults.push_back(crashAt(10, 1));
    RunResult recovered = runAudited(space, faulty);

    EXPECT_EQ(recovered.supernetHash, faultFree.supernetHash);
    EXPECT_EQ(recovered.losses, faultFree.losses);
    EXPECT_EQ(recovered.metrics.recoveries, 1);
}

} // namespace
} // namespace naspipe
