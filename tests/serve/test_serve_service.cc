/**
 * @file
 * SearchService acceptance: N concurrent supernet searches
 * multiplexed over one shared StageWorker pool, each bitwise
 * identical to its solo run, each CSP-clean under a live per-job
 * oracle, with one tenant's faults — up to retry exhaustion — never
 * touching its neighbors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/parallel_runtime.h"
#include "serve/service.h"
#include "verify/csp_oracle.h"

namespace naspipe {
namespace serve {
namespace {

/** Solo baseline: the same (space, seed, steps) on a dedicated
 *  threaded executor with the same stage count. */
RunResult
soloRun(const std::string &spaceName, std::uint64_t seed, int steps,
        int stages)
{
    SearchSpace space = makeSpaceByName(spaceName);
    RuntimeConfig c;
    c.system = naspipeSystem();
    c.numStages = stages;
    c.totalSubnets = steps;
    c.seed = seed;
    RunResult result = runTrainingThreaded(space, c);
    EXPECT_FALSE(result.failed) << result.error;
    return result;
}

JobSpec
job(const std::string &space, std::uint64_t seed, int steps)
{
    JobSpec spec;
    spec.space = space;
    spec.seed = seed;
    spec.steps = steps;
    return spec;
}

/**
 * Service fixture with one live CspOracle per expected job ID: every
 * job-gate commit streams into that job's oracle, and a recovery
 * resets only that job's chain cursors (its gate was recreated).
 */
struct AuditedService {
    explicit AuditedService(ServiceConfig config, int expectedJobs)
    {
        for (int id = 1; id <= expectedJobs; id++)
            oracles[id];  // pre-create: the map is read-only while
                          // worker threads stream commits into it
        config.commitObserver = [this](int jobId,
                                       std::uint64_t layerKey,
                                       SubnetId subnet,
                                       std::size_t rank, int stage) {
            oracles.at(jobId).observeCommit(layerKey, subnet, rank,
                                            stage);
        };
        config.recoveryObserver = [this](int jobId, int) {
            oracles.at(jobId).resetLiveChains();
        };
        service = std::make_unique<SearchService>(config);
    }

    /** Full per-job CSP audit: live chains plus the post-hoc replay
     *  of the job's parameter-store access log. */
    void audit(int jobId)
    {
        const ServeJob *j = service->job(jobId);
        ASSERT_NE(j, nullptr);
        ASSERT_EQ(j->state(), JobState::Done)
            << "job " << jobId << ": " << j->error();
        CspOracle &oracle = oracles.at(jobId);
        ASSERT_TRUE(j->result().store);
        EXPECT_TRUE(oracle.auditLog(j->result().store->accessLog()))
            << "job " << jobId << ": " << oracle.report();
        EXPECT_TRUE(oracle.ok())
            << "job " << jobId << ": " << oracle.report();
    }

    std::map<int, CspOracle> oracles;
    std::unique_ptr<SearchService> service;
};

TEST(ServeService, FourMixedJobsBitwiseIdenticalToSolo)
{
    // The acceptance bar: 4 concurrent mixed NLP.c1/CV.c1 searches
    // on ONE shared 3-stage pool, each job's weights, losses and
    // best subnet bitwise identical to its solo run, each job
    // CSP-clean under its own live oracle.
    constexpr int kStages = 3;
    std::vector<JobSpec> specs = {
        job("NLP.c1", 11, 12),
        job("CV.c1", 3, 10),
        job("NLP.c1", 5, 8),
        job("CV.c1", 9, 12),
    };
    specs[2].priority = 3;  // uneven WRR shares must not matter

    ServiceConfig sc;
    sc.numStages = kStages;
    AuditedService as(sc, static_cast<int>(specs.size()));
    std::string why;
    std::vector<int> ids = as.service->submitBatch(specs, &why);
    ASSERT_EQ(ids.size(), specs.size()) << why;
    as.service->drain();
    ASSERT_EQ(as.service->run(), SearchService::AllDone)
        << as.service->serviceError();

    for (std::size_t i = 0; i < specs.size(); i++) {
        SCOPED_TRACE("job " + std::to_string(ids[i]));
        as.audit(ids[i]);
        const ServeJob *j = as.service->job(ids[i]);
        RunResult solo = soloRun(specs[i].space, specs[i].seed,
                                 specs[i].steps, kStages);
        EXPECT_EQ(j->result().supernetHash, solo.supernetHash);
        EXPECT_EQ(j->result().losses, solo.losses);
        EXPECT_EQ(j->result().bestSubnet, solo.bestSubnet);
    }
}

TEST(ServeService, CrashRecoveryIsBitwiseAndJobScoped)
{
    // Job 1 crashes at its 6th completion, rolls back to its drained
    // checkpoint at 4 and replays — and still matches its fault-free
    // solo hash bitwise. Job 2 shares every worker with it and never
    // notices.
    constexpr int kStages = 2;
    JobSpec crashy = job("NLP.c1", 11, 12);
    crashy.ckptInterval = 4;
    crashy.recoveryRetries = 2;
    FaultSpec f;
    f.kind = FaultKind::GpuCrash;
    f.atStep = 6;
    crashy.faults.push_back(f);
    JobSpec neighbor = job("CV.c1", 3, 10);

    ServiceConfig sc;
    sc.numStages = kStages;
    AuditedService as(sc, 2);
    std::string why;
    std::vector<int> ids =
        as.service->submitBatch({crashy, neighbor}, &why);
    ASSERT_EQ(ids.size(), 2u) << why;
    as.service->drain();
    ASSERT_EQ(as.service->run(), SearchService::AllDone)
        << as.service->serviceError();

    as.audit(ids[0]);
    as.audit(ids[1]);
    const ServeJob *j1 = as.service->job(ids[0]);
    EXPECT_EQ(j1->recoveries(), 1);
    EXPECT_GT(j1->subnetsReplayed(), 0);
    RunResult solo1 = soloRun("NLP.c1", 11, 12, kStages);
    EXPECT_EQ(j1->result().supernetHash, solo1.supernetHash);
    EXPECT_EQ(j1->result().losses, solo1.losses);

    const ServeJob *j2 = as.service->job(ids[1]);
    EXPECT_EQ(j2->recoveries(), 0);
    RunResult solo2 = soloRun("CV.c1", 3, 10, kStages);
    EXPECT_EQ(j2->result().supernetHash, solo2.supernetHash);
    EXPECT_EQ(j2->result().losses, solo2.losses);
}

TEST(ServeService, RetryExhaustionFailsOneJobOnly)
{
    // retries=0: the first crash exhausts the budget. The service
    // reports the per-job exit-5 outcome, the victim is Failed with
    // the retries-exhausted flag, and the neighbor still matches its
    // solo run bitwise — the shared workers never went down.
    constexpr int kStages = 2;
    JobSpec doomed = job("NLP.c1", 11, 12);
    doomed.ckptInterval = 4;
    doomed.recoveryRetries = 0;
    FaultSpec f;
    f.kind = FaultKind::GpuCrash;
    f.atStep = 6;
    doomed.faults.push_back(f);
    JobSpec neighbor = job("CV.c1", 3, 10);

    ServiceConfig sc;
    sc.numStages = kStages;
    AuditedService as(sc, 2);
    std::string why;
    std::vector<int> ids =
        as.service->submitBatch({doomed, neighbor}, &why);
    ASSERT_EQ(ids.size(), 2u) << why;
    as.service->drain();
    EXPECT_EQ(as.service->run(), SearchService::RetriesExhausted);

    const ServeJob *j1 = as.service->job(ids[0]);
    ASSERT_NE(j1, nullptr);
    EXPECT_EQ(j1->state(), JobState::Failed);
    EXPECT_TRUE(j1->retriesExhausted());
    EXPECT_NE(j1->error().find("retries exhausted"),
              std::string::npos)
        << j1->error();

    as.audit(ids[1]);
    RunResult solo2 = soloRun("CV.c1", 3, 10, kStages);
    EXPECT_EQ(as.service->job(ids[1])->result().supernetHash,
              solo2.supernetHash);
}

TEST(ServeService, InflightBudgetQueuesJobsDeterministically)
{
    // A budget that only fits one tenant at a time: jobs are admitted
    // in ID order as windows free up, and queueing changes nothing
    // about any job's weights.
    constexpr int kStages = 2;
    std::vector<JobSpec> specs = {
        job("NLP.c1", 11, 8),
        job("CV.c1", 3, 8),
        job("NLP.c1", 5, 8),
    };
    for (JobSpec &s : specs)
        s.maxInflight = 2;

    ServiceConfig sc;
    sc.numStages = kStages;
    sc.maxTotalInflight = 2;  // one 2-wide window at a time
    AuditedService as(sc, static_cast<int>(specs.size()));
    std::string why;
    std::vector<int> ids = as.service->submitBatch(specs, &why);
    ASSERT_EQ(ids.size(), specs.size()) << why;
    as.service->drain();
    ASSERT_EQ(as.service->run(), SearchService::AllDone)
        << as.service->serviceError();

    for (std::size_t i = 0; i < specs.size(); i++) {
        SCOPED_TRACE("job " + std::to_string(ids[i]));
        as.audit(ids[i]);
        RunResult solo = soloRun(specs[i].space, specs[i].seed,
                                 specs[i].steps, kStages);
        EXPECT_EQ(as.service->job(ids[i])->result().supernetHash,
                  solo.supernetHash);
    }
}

TEST(ServeService, CancelFailsTheJobAndSparesNeighbors)
{
    ServiceConfig sc;
    sc.numStages = 2;
    SearchService service(sc);
    std::string why;
    int keep = service.submit(job("NLP.c1", 11, 8), &why);
    ASSERT_GT(keep, 0) << why;
    int victim = service.submit(job("CV.c1", 3, 24), &why);
    ASSERT_GT(victim, 0) << why;
    ASSERT_TRUE(service.cancel(victim));
    EXPECT_FALSE(service.cancel(99));  // unknown ID
    service.drain();
    EXPECT_EQ(service.run(), SearchService::JobFailed);

    EXPECT_EQ(service.job(victim)->state(), JobState::Failed);
    EXPECT_NE(service.job(victim)->error().find("cancelled"),
              std::string::npos);
    EXPECT_FALSE(service.job(victim)->retriesExhausted());

    EXPECT_EQ(service.job(keep)->state(), JobState::Done);
    RunResult solo = soloRun("NLP.c1", 11, 8, 2);
    EXPECT_EQ(service.job(keep)->result().supernetHash,
              solo.supernetHash);
}

TEST(ServeService, SubmitValidatesAndBatchIsAtomic)
{
    ServiceConfig sc;
    sc.numStages = 2;
    SearchService service(sc);
    std::string why;
    JobSpec bad = job("AUDIO.c9", 1, 8);
    EXPECT_EQ(service.submit(bad, &why), -1);
    EXPECT_NE(why.find("unknown search space"), std::string::npos);

    // All-or-nothing: one bad spec rejects the whole batch.
    std::vector<int> ids =
        service.submitBatch({job("NLP.c1", 11, 8), bad}, &why);
    EXPECT_TRUE(ids.empty());
    EXPECT_TRUE(service.status().empty());

    // An empty, drained service finishes immediately.
    service.drain();
    EXPECT_EQ(service.run(), SearchService::AllDone);
}

TEST(ServeService, ResubmitResumesFromPersistedCheckpointBitwise)
{
    // The interrupted-then-resubmitted tenant: a job that crashes
    // out of its retry budget leaves its last drained checkpoint at
    // ckpt-path; resubmitting the same spec against the same path
    // resumes from that barrier and finishes on EXACTLY the weights,
    // losses and winner of a never-interrupted run.
    constexpr int kStages = 2;
    const std::string path =
        ::testing::TempDir() + "naspipe_serve_resume.ckpt";
    std::remove(path.c_str());

    JobSpec spec = job("NLP.c1", 11, 12);
    spec.ckptInterval = 4;
    spec.ckptPath = path;
    spec.recoveryRetries = 0;
    FaultSpec f;
    f.kind = FaultKind::GpuCrash;
    f.atStep = 6;
    spec.faults.push_back(f);

    {
        // First submission: no checkpoint at the path yet, so this
        // is a fresh start; the crash at completion 6 exhausts the
        // zero-retry budget after the barrier-4 checkpoint persisted.
        ServiceConfig sc;
        sc.numStages = kStages;
        SearchService service(sc);
        std::string why;
        int id = service.submit(spec, &why);
        ASSERT_GT(id, 0) << why;
        service.drain();
        EXPECT_EQ(service.run(), SearchService::RetriesExhausted);
        EXPECT_EQ(service.job(id)->state(), JobState::Failed);
    }
    ASSERT_TRUE(std::ifstream(path).good())
        << "interrupted job left no checkpoint at " << path;

    JobSpec again = spec;
    again.faults.clear();
    {
        ServiceConfig sc;
        sc.numStages = kStages;
        SearchService service(sc);
        std::string why;
        int id = service.submit(again, &why);
        ASSERT_GT(id, 0) << why;
        service.drain();
        ASSERT_EQ(service.run(), SearchService::AllDone)
            << service.serviceError();
        const ServeJob *j = service.job(id);
        ASSERT_NE(j, nullptr);
        ASSERT_EQ(j->state(), JobState::Done) << j->error();

        RunResult solo = soloRun("NLP.c1", 11, 12, kStages);
        EXPECT_EQ(j->result().supernetHash, solo.supernetHash);
        EXPECT_EQ(j->result().losses, solo.losses);
        EXPECT_EQ(j->result().bestSubnet, solo.bestSubnet);
    }

    // A path that holds bytes which are NOT a checkpoint must fail
    // the job loudly instead of silently retraining from subnet 0.
    {
        std::ofstream(path, std::ios::trunc) << "not a checkpoint";
        ServiceConfig sc;
        sc.numStages = kStages;
        SearchService service(sc);
        std::string why;
        int id = service.submit(again, &why);
        ASSERT_GT(id, 0) << why;
        service.drain();
        EXPECT_EQ(service.run(), SearchService::JobFailed);
        ASSERT_EQ(service.job(id)->state(), JobState::Failed);
        EXPECT_NE(service.job(id)->error().find("cannot resume"),
                  std::string::npos)
            << service.job(id)->error();
    }
    std::remove(path.c_str());
}

TEST(ServeService, RerunMetricsExportIsByteIdentical)
{
    // The CI rerun gate in library form: two services, same specs,
    // stable-only exports compare equal as strings.
    auto once = [] {
        ServiceConfig sc;
        sc.numStages = 2;
        SearchService service(sc);
        std::vector<JobSpec> specs = {
            job("NLP.c1", 11, 10),
            job("CV.c1", 3, 8),
        };
        std::string why;
        EXPECT_EQ(service.submitBatch(specs, &why).size(), 2u)
            << why;
        service.drain();
        EXPECT_EQ(service.run(), SearchService::AllDone)
            << service.serviceError();
        return service.exportMetricsJson(true);
    };
    std::string first = once();
    std::string second = once();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find("\"job/1/"), std::string::npos);
    EXPECT_NE(first.find("\"serve/jobs\""), std::string::npos);
    EXPECT_NE(first.find("\"quality/supernet_hash\""),
              std::string::npos);
}

} // namespace
} // namespace serve
} // namespace naspipe
