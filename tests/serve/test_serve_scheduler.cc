/**
 * @file
 * JobScheduler units: smooth-WRR proportionality, tie-breaking,
 * drain rotation, and the determinism contract (same eligibility
 * sequence in, same pick sequence out).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "serve/scheduler.h"

namespace naspipe {
namespace serve {
namespace {

TEST(ServeScheduler, WrrMatchesWeightProportions)
{
    JobScheduler sched;
    sched.addJob(1, 1);
    sched.addJob(2, 2);
    sched.addJob(3, 3);
    std::map<int, int> slots;
    // 600 slots with everyone eligible: exactly weight/sum(weights)
    // each — smooth WRR is exact over whole cycles of sum = 6.
    for (int i = 0; i < 600; i++)
        slots[sched.pickAdmit({1, 2, 3})]++;
    EXPECT_EQ(slots[1], 100);
    EXPECT_EQ(slots[2], 200);
    EXPECT_EQ(slots[3], 300);
}

TEST(ServeScheduler, WrrIsSmooth)
{
    // "Smooth" means interleaved, not bursty: with weights 1 and 1
    // the pick sequence strictly alternates.
    JobScheduler sched;
    sched.addJob(1, 1);
    sched.addJob(2, 1);
    int first = sched.pickAdmit({1, 2});
    for (int i = 1; i < 10; i++) {
        int pick = sched.pickAdmit({1, 2});
        EXPECT_NE(pick, first) << "slot " << i;
        first = pick;
    }
}

TEST(ServeScheduler, TiesGoToLowestJobId)
{
    JobScheduler sched;
    sched.addJob(4, 2);
    sched.addJob(7, 2);
    // Equal weights, equal credits: the first slot of every cycle
    // must go to the lower job ID.
    EXPECT_EQ(sched.pickAdmit({4, 7}), 4);
    EXPECT_EQ(sched.pickAdmit({4, 7}), 7);
    EXPECT_EQ(sched.pickAdmit({4, 7}), 4);
}

TEST(ServeScheduler, IneligibleJobsNeitherGainNorPay)
{
    JobScheduler sched;
    sched.addJob(1, 1);
    sched.addJob(2, 1);
    // Job 2 sits out three rounds (window full); when it returns it
    // competes from its remembered credit, not from an accumulated
    // backlog that would let it monopolize the pool.
    EXPECT_EQ(sched.pickAdmit({1}), 1);
    EXPECT_EQ(sched.pickAdmit({1}), 1);
    EXPECT_EQ(sched.pickAdmit({1}), 1);
    int a = sched.pickAdmit({1, 2});
    int b = sched.pickAdmit({1, 2});
    EXPECT_NE(a, b);  // alternation resumes immediately
}

TEST(ServeScheduler, DeterministicReplay)
{
    // Same weights, same eligibility sequence => same picks. This is
    // the property the cross-job schedule's reproducibility rests on.
    std::vector<std::vector<int>> eligibility = {
        {1, 2, 3}, {2, 3}, {1, 3}, {1, 2, 3}, {3}, {1, 2},
        {1, 2, 3}, {1}, {2, 3}, {1, 2, 3}, {1, 2, 3}, {2},
    };
    auto runOnce = [&eligibility] {
        JobScheduler sched;
        sched.addJob(1, 2);
        sched.addJob(2, 1);
        sched.addJob(3, 3);
        std::vector<int> picks;
        for (const auto &eligible : eligibility)
            picks.push_back(sched.pickAdmit(eligible));
        return picks;
    };
    EXPECT_EQ(runOnce(), runOnce());
}

TEST(ServeScheduler, DrainRotates)
{
    JobScheduler sched;
    sched.addJob(1, 1);
    sched.addJob(2, 1);
    sched.addJob(3, 1);
    EXPECT_EQ(sched.pickDrain({1, 2, 3}), 1);
    EXPECT_EQ(sched.pickDrain({1, 2, 3}), 2);
    EXPECT_EQ(sched.pickDrain({1, 2, 3}), 3);
    EXPECT_EQ(sched.pickDrain({1, 2, 3}), 1);  // wraps
    // A job leaving the eligible set is skipped, not waited for.
    EXPECT_EQ(sched.pickDrain({1, 3}), 3);
    EXPECT_EQ(sched.pickDrain({1, 3}), 1);
}

TEST(ServeScheduler, EmptyEligibleSetReturnsNoPick)
{
    JobScheduler sched;
    sched.addJob(1, 1);
    EXPECT_EQ(sched.pickAdmit({}), -1);
    EXPECT_EQ(sched.pickDrain({}), -1);
}

TEST(ServeScheduler, RemoveJobForgetsCredit)
{
    JobScheduler sched;
    sched.addJob(1, 1);
    sched.addJob(2, 1);
    sched.pickAdmit({1, 2});
    sched.removeJob(1);
    EXPECT_FALSE(sched.hasJob(1));
    EXPECT_TRUE(sched.hasJob(2));
    EXPECT_EQ(sched.pickAdmit({2}), 2);
}

} // namespace
} // namespace serve
} // namespace naspipe
