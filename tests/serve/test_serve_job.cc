/**
 * @file
 * ServeJob units that need no pool: the job-spec parser and
 * validator, and the serve state-machine transition matrix.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/job.h"

namespace naspipe {
namespace serve {
namespace {

TEST(ServeJobSpec, ParseFullSpec)
{
    JobSpec spec;
    std::string why;
    ASSERT_TRUE(parseJobSpec("name=bert,space=CV.c1,seed=42,"
                             "steps=16,priority=3,ckpt=4,"
                             "ckpt-path=/tmp/j.ckpt,retries=2,"
                             "window=5,fault=crash@6",
                             spec, &why))
        << why;
    EXPECT_EQ(spec.name, "bert");
    EXPECT_EQ(spec.space, "CV.c1");
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_EQ(spec.steps, 16);
    EXPECT_EQ(spec.priority, 3);
    EXPECT_EQ(spec.ckptInterval, 4);
    EXPECT_EQ(spec.ckptPath, "/tmp/j.ckpt");
    EXPECT_EQ(spec.recoveryRetries, 2);
    EXPECT_EQ(spec.maxInflight, 5);
    ASSERT_EQ(spec.faults.size(), 1u);
    EXPECT_EQ(spec.faults[0].kind, FaultKind::GpuCrash);
    EXPECT_EQ(spec.faults[0].atStep, 6);
}

TEST(ServeJobSpec, ParseDefaults)
{
    JobSpec spec;
    ASSERT_TRUE(parseJobSpec("seed=11", spec));
    EXPECT_EQ(spec.space, "NLP.c1");
    EXPECT_EQ(spec.seed, 11u);
    EXPECT_EQ(spec.steps, 32);
    EXPECT_EQ(spec.priority, 1);
    EXPECT_EQ(spec.recoveryRetries, 3);
    EXPECT_TRUE(spec.faults.empty());
}

TEST(ServeJobSpec, ParseRepeatedFaults)
{
    JobSpec spec;
    ASSERT_TRUE(
        parseJobSpec("fault=crash@4,fault=drop@9", spec));
    ASSERT_EQ(spec.faults.size(), 2u);
    EXPECT_EQ(spec.faults[0].atStep, 4);
    EXPECT_EQ(spec.faults[1].kind, FaultKind::LinkDrop);
    EXPECT_EQ(spec.faults[1].atStep, 9);
}

TEST(ServeJobSpec, ParseErrors)
{
    JobSpec spec;
    std::string why;
    EXPECT_FALSE(parseJobSpec("steps", spec, &why));
    EXPECT_NE(why.find("key=value"), std::string::npos);
    EXPECT_FALSE(parseJobSpec("steps=", spec, &why));
    EXPECT_NE(why.find("empty value"), std::string::npos);
    EXPECT_FALSE(parseJobSpec("steps=abc", spec, &why));
    EXPECT_NE(why.find("non-numeric"), std::string::npos);
    EXPECT_FALSE(parseJobSpec("bogus=1", spec, &why));
    EXPECT_NE(why.find("unknown job spec key"), std::string::npos);
    EXPECT_FALSE(parseJobSpec("fault=boom@3", spec, &why));
    EXPECT_NE(why.find("bad fault"), std::string::npos);
}

TEST(ServeJobSpec, ValidateAcceptsDefaults)
{
    JobSpec spec;
    std::string why;
    EXPECT_TRUE(validateJobSpec(spec, &why)) << why;
}

TEST(ServeJobSpec, ValidateRejectsUnknownSpace)
{
    JobSpec spec;
    spec.space = "AUDIO.c9";
    std::string why;
    EXPECT_FALSE(validateJobSpec(spec, &why));
    EXPECT_NE(why.find("unknown search space"), std::string::npos);
}

TEST(ServeJobSpec, ValidateRejectsTransientFaults)
{
    // Transient faults (stall/degrade) slow a shared *worker*, which
    // would perturb every tenant — only fail-stop kinds are
    // job-scoped.
    for (FaultKind kind :
         {FaultKind::StageStall, FaultKind::LinkDegrade}) {
        JobSpec spec;
        FaultSpec f;
        f.kind = kind;
        f.atStep = 3;
        spec.faults.push_back(f);
        std::string why;
        EXPECT_FALSE(validateJobSpec(spec, &why));
        EXPECT_NE(why.find("not job-scoped"), std::string::npos);
    }
    // Fail-stop kinds pass.
    for (FaultKind kind :
         {FaultKind::GpuCrash, FaultKind::LinkDrop}) {
        JobSpec spec;
        FaultSpec f;
        f.kind = kind;
        f.atStep = 3;
        spec.faults.push_back(f);
        std::string why;
        EXPECT_TRUE(validateJobSpec(spec, &why)) << why;
    }
}

TEST(ServeJobSpec, ValidateRejectsBadNumerics)
{
    std::string why;
    {
        JobSpec spec;
        spec.steps = 0;
        EXPECT_FALSE(validateJobSpec(spec, &why));
    }
    {
        JobSpec spec;
        spec.priority = 0;
        EXPECT_FALSE(validateJobSpec(spec, &why));
    }
    {
        JobSpec spec;
        spec.recoveryRetries = -1;
        EXPECT_FALSE(validateJobSpec(spec, &why));
    }
    {
        JobSpec spec;
        FaultSpec f;
        f.atStep = 0;
        spec.faults.push_back(f);
        EXPECT_FALSE(validateJobSpec(spec, &why));
        EXPECT_NE(why.find("fault step"), std::string::npos);
    }
}

TEST(ServeJobState, TransitionMatrix)
{
    const std::vector<JobState> all = {
        JobState::Queued,   JobState::Admitted,
        JobState::Running,  JobState::Recovering,
        JobState::Draining, JobState::Done,
        JobState::Failed,
    };
    // The full legal-edge set; everything else must be rejected.
    auto legal = [](JobState from, JobState to) {
        using S = JobState;
        switch (from) {
        case S::Queued:
            return to == S::Admitted || to == S::Failed;
        case S::Admitted:
            return to == S::Running || to == S::Failed;
        case S::Running:
            return to == S::Draining || to == S::Recovering ||
                   to == S::Done || to == S::Failed;
        case S::Draining:
            return to == S::Recovering || to == S::Done ||
                   to == S::Failed;
        case S::Recovering:
            return to == S::Running || to == S::Failed;
        case S::Done:
        case S::Failed:
            return false;
        }
        return false;
    };
    for (JobState from : all) {
        for (JobState to : all) {
            EXPECT_EQ(jobTransitionAllowed(from, to),
                      legal(from, to))
                << jobStateName(from) << " -> "
                << jobStateName(to);
        }
    }
}

TEST(ServeJobState, NamesAreDistinct)
{
    const std::vector<JobState> all = {
        JobState::Queued,   JobState::Admitted,
        JobState::Running,  JobState::Recovering,
        JobState::Draining, JobState::Done,
        JobState::Failed,
    };
    std::vector<std::string> names;
    for (JobState s : all)
        names.push_back(jobStateName(s));
    for (std::size_t i = 0; i < names.size(); i++)
        for (std::size_t j = i + 1; j < names.size(); j++)
            EXPECT_NE(names[i], names[j]);
}

} // namespace
} // namespace serve
} // namespace naspipe
