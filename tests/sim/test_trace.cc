/**
 * @file
 * Trace recorder tests.
 */

#include <gtest/gtest.h>

#include "sim/trace.h"

namespace naspipe {
namespace {

TEST(Trace, RecordsInOrder)
{
    Trace t;
    t.add({0, 10, 0, TraceKind::Forward, 0, ""});
    t.add({10, 20, 0, TraceKind::Backward, 0, ""});
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.records()[0].kind, TraceKind::Forward);
}

TEST(Trace, DisabledDropsRecords)
{
    Trace t;
    t.enabled(false);
    t.add({0, 1, 0, TraceKind::Forward, 0, ""});
    EXPECT_EQ(t.size(), 0u);
}

TEST(Trace, FiltersByKindAndStage)
{
    Trace t;
    t.add({0, 1, 0, TraceKind::Forward, 1, ""});
    t.add({1, 2, 1, TraceKind::Forward, 1, ""});
    t.add({2, 3, 0, TraceKind::Backward, 1, ""});
    t.add({3, 4, 0, TraceKind::Prefetch, 1, ""});
    EXPECT_EQ(t.byKind(TraceKind::Forward).size(), 2u);
    EXPECT_EQ(t.byStage(0).size(), 3u);
}

TEST(Trace, TaskTimelineSortedAndFiltered)
{
    Trace t;
    t.add({50, 60, 0, TraceKind::Backward, 2, ""});
    t.add({0, 10, 0, TraceKind::Forward, 1, ""});
    t.add({20, 30, 0, TraceKind::Prefetch, 1, ""});
    auto timeline = t.taskTimeline();
    ASSERT_EQ(timeline.size(), 2u);
    EXPECT_EQ(timeline[0].subnet, 1);
    EXPECT_EQ(timeline[1].subnet, 2);
}

TEST(Trace, NegativeDurationPanics)
{
    Trace t;
    EXPECT_THROW(t.add({10, 5, 0, TraceKind::Forward, 0, ""}),
                 std::logic_error);
}

TEST(Trace, RenderTimelineShowsStages)
{
    Trace t;
    t.add({0, kTicksPerSec, 0, TraceKind::Forward, 3, ""});
    t.add({kTicksPerSec, 2 * kTicksPerSec, 1, TraceKind::Backward, 3,
           ""});
    std::string chart = t.renderTimeline(2, 40);
    EXPECT_NE(chart.find("stage 0"), std::string::npos);
    EXPECT_NE(chart.find("stage 1"), std::string::npos);
    // Forward of subnet 3 renders as '3', backward as 'D'.
    EXPECT_NE(chart.find('3'), std::string::npos);
    EXPECT_NE(chart.find('D'), std::string::npos);
}

TEST(Trace, RenderEmptyTimeline)
{
    Trace t;
    EXPECT_EQ(t.renderTimeline(2), "(empty timeline)\n");
}

TEST(Trace, ChromeJsonExport)
{
    Trace t;
    t.add({0, 2 * kTicksPerUs, 0, TraceKind::Forward, 3, ""});
    t.add({5 * kTicksPerUs, 5 * kTicksPerUs, 1, TraceKind::Flush, -1,
           "bulk \"flush\""});
    std::string json = t.exportChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"fwd SN3\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
    // Zero-duration records keep a visible 1 us.
    EXPECT_NE(json.find("\"dur\":1"), std::string::npos);
    // Quotes in details are escaped.
    EXPECT_NE(json.find("bulk \\\"flush\\\""), std::string::npos);
    // Stage maps to tid.
    EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
}

TEST(Trace, ChromeJsonEmpty)
{
    Trace t;
    EXPECT_EQ(t.exportChromeJson(), "{\"traceEvents\":[]}");
}

TEST(Trace, ClearEmpties)
{
    Trace t;
    t.add({0, 1, 0, TraceKind::Forward, 0, ""});
    t.clear();
    EXPECT_EQ(t.size(), 0u);
}

TEST(TraceKindName, AllNamed)
{
    EXPECT_STREQ(traceKindName(TraceKind::Forward), "fwd");
    EXPECT_STREQ(traceKindName(TraceKind::Backward), "bwd");
    EXPECT_STREQ(traceKindName(TraceKind::Prefetch), "prefetch");
    EXPECT_STREQ(traceKindName(TraceKind::Evict), "evict");
    EXPECT_STREQ(traceKindName(TraceKind::MirrorSync), "mirror");
    EXPECT_STREQ(traceKindName(TraceKind::Stall), "stall");
    EXPECT_STREQ(traceKindName(TraceKind::Flush), "flush");
}

} // namespace
} // namespace naspipe
