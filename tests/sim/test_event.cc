/**
 * @file
 * Event queue ordering tests: the deterministic heart of the sim.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event.h"

namespace naspipe {
namespace {

TEST(Ticks, Conversions)
{
    EXPECT_EQ(ticksFromMs(1.0), kTicksPerMs);
    EXPECT_EQ(ticksFromSec(1.0), kTicksPerSec);
    EXPECT_EQ(ticksFromMs(0.5), kTicksPerMs / 2);
    EXPECT_DOUBLE_EQ(ticksToSec(kTicksPerSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToMs(kTicksPerMs), 1.0);
}

TEST(Ticks, RoundTripSubMillisecond)
{
    Tick t = ticksFromMs(0.03);  // LightConv swap time
    EXPECT_NEAR(ticksToMs(t), 0.03, 1e-9);
}

TEST(EventQueue, TimeOrdering)
{
    EventQueue q;
    std::vector<int> order;
    q.push(30, EventPriority::Default, [&] { order.push_back(3); });
    q.push(10, EventPriority::Default, [&] { order.push_back(1); });
    q.push(20, EventPriority::Default, [&] { order.push_back(2); });
    while (!q.empty())
        q.pop().action();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityBreaksTimeTies)
{
    EventQueue q;
    std::vector<int> order;
    q.push(5, EventPriority::Schedule, [&] { order.push_back(2); });
    q.push(5, EventPriority::Completion, [&] { order.push_back(1); });
    q.push(5, EventPriority::Default, [&] { order.push_back(3); });
    while (!q.empty())
        q.pop().action();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, InsertionOrderBreaksFullTies)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; i++)
        q.push(7, EventPriority::Default, [&, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().action();
    for (int i = 0; i < 10; i++)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeAndSize)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    q.push(42, EventPriority::Default, [] {});
    q.push(17, EventPriority::Default, [] {});
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.nextTime(), 17u);
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue q;
    q.push(1, EventPriority::Default, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NullActionPanics)
{
    EventQueue q;
    EXPECT_THROW(q.push(0, EventPriority::Default, nullptr),
                 std::logic_error);
}

} // namespace
} // namespace naspipe
