/**
 * @file
 * Simulation kernel tests.
 */

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace naspipe {
namespace {

TEST(Simulator, RunsEventsAndAdvancesClock)
{
    Simulator sim;
    Tick seen = 0;
    sim.scheduleAt(100, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_EQ(seen, 100u);
    EXPECT_EQ(sim.now(), 100u);
    EXPECT_EQ(sim.executedEvents(), 1u);
}

TEST(Simulator, ScheduleAfterIsRelative)
{
    Simulator sim;
    std::vector<Tick> times;
    sim.scheduleAt(50, [&] {
        times.push_back(sim.now());
        sim.scheduleAfter(25, [&] { times.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 50u);
    EXPECT_EQ(times[1], 75u);
}

TEST(Simulator, SchedulingInPastPanics)
{
    Simulator sim;
    sim.scheduleAt(10, [&] {
        EXPECT_THROW(sim.scheduleAt(5, [] {}), std::logic_error);
    });
    sim.run();
}

TEST(Simulator, RunUntilStopsAtDeadline)
{
    Simulator sim;
    int ran = 0;
    sim.scheduleAt(10, [&] { ran++; });
    sim.scheduleAt(20, [&] { ran++; });
    sim.scheduleAt(30, [&] { ran++; });
    sim.runUntil(20);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(sim.now(), 20u);
    sim.run();
    EXPECT_EQ(ran, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains)
{
    Simulator sim;
    sim.scheduleAt(5, [] {});
    sim.runUntil(100);
    EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, EventsCanCascade)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            sim.scheduleAfter(1, chain);
    };
    sim.scheduleAt(0, chain);
    sim.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(sim.now(), 99u);
}

TEST(Simulator, StepLimitCatchesRunaway)
{
    Simulator sim;
    sim.stepLimit(50);
    std::function<void()> forever = [&] {
        sim.scheduleAfter(1, forever);
    };
    sim.scheduleAt(0, forever);
    EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulator, ResetClearsState)
{
    Simulator sim;
    sim.scheduleAt(10, [] {});
    sim.run();
    sim.reset();
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_EQ(sim.pendingEvents(), 0u);
    EXPECT_EQ(sim.executedEvents(), 0u);
}

TEST(Simulator, DeterministicReplay)
{
    // Two identical simulations must produce identical event orders.
    auto run = [] {
        Simulator sim;
        std::vector<int> order;
        for (int i = 0; i < 20; i++) {
            sim.scheduleAt(static_cast<Tick>((i * 37) % 10),
                           [&order, i] { order.push_back(i); },
                           i % 2 ? EventPriority::Completion
                                 : EventPriority::Default);
        }
        sim.run();
        return order;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace naspipe
