/**
 * @file
 * SerialEngine and Channel tests.
 */

#include <gtest/gtest.h>

#include "sim/resource.h"

namespace naspipe {
namespace {

TEST(SerialEngine, SerializesReservations)
{
    Simulator sim;
    SerialEngine e(sim, "gpu0.compute");
    Tick s1 = e.reserve(100);
    Tick s2 = e.reserve(50);
    EXPECT_EQ(s1, 0u);
    EXPECT_EQ(s2, 100u);
    EXPECT_EQ(e.freeAt(), 150u);
}

TEST(SerialEngine, ReserveFromHonorsEarliest)
{
    Simulator sim;
    SerialEngine e(sim, "x");
    Tick s = e.reserveFrom(500, 10);
    EXPECT_EQ(s, 500u);
    EXPECT_EQ(e.freeAt(), 510u);
    // Earlier request still queues behind.
    EXPECT_EQ(e.reserveFrom(0, 10), 510u);
}

TEST(SerialEngine, NeverReservesInThePast)
{
    Simulator sim;
    SerialEngine e(sim, "x");
    sim.scheduleAt(1000, [&] {
        EXPECT_EQ(e.reserveFrom(0, 5), 1000u);
    });
    sim.run();
}

TEST(SerialEngine, FreeByQueries)
{
    Simulator sim;
    SerialEngine e(sim, "x");
    e.reserve(100);
    EXPECT_FALSE(e.freeBy(50));
    EXPECT_TRUE(e.freeBy(100));
}

TEST(SerialEngine, TracksUtilization)
{
    Simulator sim;
    SerialEngine e(sim, "x");
    e.reserve(ticksFromSec(1.0));
    EXPECT_DOUBLE_EQ(e.utilization().busyTime(), 1.0);
    EXPECT_EQ(e.utilization().intervals(), 1u);
}

TEST(SerialEngine, ZeroDurationIsFree)
{
    Simulator sim;
    SerialEngine e(sim, "x");
    e.reserve(0);
    EXPECT_EQ(e.utilization().intervals(), 0u);
    EXPECT_EQ(e.freeAt(), 0u);
}

TEST(SerialEngine, ResetRestoresAvailability)
{
    Simulator sim;
    SerialEngine e(sim, "x");
    e.reserve(100);
    e.reset();
    EXPECT_EQ(e.freeAt(), 0u);
    EXPECT_DOUBLE_EQ(e.utilization().busyTime(), 0.0);
}

TEST(Channel, TransferTimeIsLatencyPlusWire)
{
    Simulator sim;
    Channel c(sim, "pcie", 1e9, 1000);  // 1 GB/s, 1 us latency
    // 1 MB at 1 GB/s = 1 ms = 1e6 ticks, plus latency.
    EXPECT_EQ(c.transferTime(1'000'000), 1000u + 1'000'000u);
}

TEST(Channel, TransfersSerialize)
{
    Simulator sim;
    Channel c(sim, "pcie", 1e9, 0);
    Tick done1 = c.transfer(1'000'000);
    Tick done2 = c.transfer(1'000'000);
    EXPECT_EQ(done1, 1'000'000u);
    EXPECT_EQ(done2, 2'000'000u);
}

TEST(Channel, TransferFromDelays)
{
    Simulator sim;
    Channel c(sim, "net", 1e9, 0);
    Tick done = c.transferFrom(5'000'000, 1'000'000);
    EXPECT_EQ(done, 6'000'000u);
}

TEST(Channel, ZeroBandwidthRejected)
{
    Simulator sim;
    EXPECT_THROW(Channel(sim, "bad", 0.0, 0), std::logic_error);
}

} // namespace
} // namespace naspipe
