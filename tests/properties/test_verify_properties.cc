/**
 * @file
 * Negative-path properties of the CspOracle: a real recorded run
 * passes the audit, and *any* order corruption of a shared layer's
 * history — most importantly the seeded swap-two-writes mutation of
 * the acceptance criteria — is rejected with a report naming the
 * layer and the offending sequence IDs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/engine.h"
#include "runtime/pipeline_runtime.h"
#include "verify/csp_oracle.h"

namespace naspipe {
namespace {

/** One small recorded run shared by every property below. */
const RunResult &
recordedRun()
{
    static const RunResult result = [] {
        RuntimeConfig c;
        c.system = naspipeSystem();
        c.numStages = 4;
        c.totalSubnets = 24;
        c.seed = 11;
        SearchSpace space = makeSpaceByName("NLP.c1");
        RunResult r = runTraining(space, c);
        EXPECT_FALSE(r.failed) << r.error;
        EXPECT_FALSE(r.oom);
        return r;
    }();
    return result;
}

/** A layer whose history has at least two distinct activators. */
LayerId
sharedLayerOf(const AccessLog &log)
{
    for (const LayerId &layer : log.touchedLayers()) {
        const std::vector<AccessRecord> &h = log.layerHistory(layer);
        if (h.size() >= 4 && h.front().subnet != h.back().subnet)
            return layer;
    }
    ADD_FAILURE() << "no shared layer in the recorded run";
    return LayerId{};
}

std::string
describe(const std::vector<CspViolation> &violations)
{
    std::string all;
    for (const CspViolation &v : violations)
        all += v.describe() + "\n";
    return all;
}

TEST(VerifyProperties, RecordedRunPassesTheAudit)
{
    CspOracle oracle;
    EXPECT_TRUE(oracle.auditLog(recordedRun().store->accessLog()))
        << oracle.report();
    EXPECT_GT(oracle.auditedLayers(), 0u);
}

TEST(VerifyProperties, SwappedWritesOnSharedLayerAreRejected)
{
    const AccessLog &log = recordedRun().store->accessLog();
    LayerId layer = sharedLayerOf(log);
    std::vector<AccessRecord> mutated = log.layerHistory(layer);

    // Seeded corruption: swap the WRITEs of the first two activators.
    std::vector<std::size_t> writes;
    for (std::size_t i = 0; i < mutated.size(); i++) {
        if (mutated[i].kind == AccessKind::Write)
            writes.push_back(i);
    }
    ASSERT_GE(writes.size(), 2u);
    SubnetId a = mutated[writes[0]].subnet;
    SubnetId b = mutated[writes[1]].subnet;
    ASSERT_NE(a, b);
    std::swap(mutated[writes[0]].subnet, mutated[writes[1]].subnet);

    CspOracle oracle;
    EXPECT_FALSE(oracle.auditLayer(layer, mutated));
    ASSERT_FALSE(oracle.ok());

    // The report names the mutated layer and both sequence IDs.
    std::string report = oracle.report();
    EXPECT_NE(report.find("layer(block " +
                          std::to_string(layer.block) + ", choice " +
                          std::to_string(layer.choice) + ")"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("SN" + std::to_string(a)),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("SN" + std::to_string(b)),
              std::string::npos)
        << report;
}

TEST(VerifyProperties, AnyAdjacentSwapOnSharedLayerIsRejected)
{
    // Stronger property: the clean history is *rigid*. Swapping any
    // adjacent pair of records that differ in (subnet, kind) must
    // trip the oracle — there is no reordering slack the audit
    // cannot see.
    const AccessLog &log = recordedRun().store->accessLog();
    LayerId layer = sharedLayerOf(log);
    const std::vector<AccessRecord> &clean = log.layerHistory(layer);

    for (std::size_t i = 0; i + 1 < clean.size(); i++) {
        if (clean[i].subnet == clean[i + 1].subnet &&
            clean[i].kind == clean[i + 1].kind)
            continue;
        std::vector<AccessRecord> mutated = clean;
        std::swap(mutated[i].subnet, mutated[i + 1].subnet);
        std::swap(mutated[i].kind, mutated[i + 1].kind);
        CspOracle oracle;
        EXPECT_FALSE(oracle.auditLayer(layer, mutated))
            << "swap at " << i << " went undetected";
    }
}

TEST(VerifyProperties, DroppedWriteIsRejected)
{
    const AccessLog &log = recordedRun().store->accessLog();
    LayerId layer = sharedLayerOf(log);
    std::vector<AccessRecord> mutated = log.layerHistory(layer);
    auto firstWrite =
        std::find_if(mutated.begin(), mutated.end(),
                     [](const AccessRecord &r) {
                         return r.kind == AccessKind::Write;
                     });
    ASSERT_NE(firstWrite, mutated.end());
    mutated.erase(firstWrite);

    CspOracle oracle;
    EXPECT_FALSE(oracle.auditLayer(layer, mutated))
        << "a lost write must not audit clean";
}

TEST(VerifyProperties, ViolationsLocalizeToTheCorruptedLayer)
{
    // Audit the full log with exactly one layer corrupted: every
    // violation must name that layer, none may leak elsewhere.
    const AccessLog &log = recordedRun().store->accessLog();
    LayerId corrupted = sharedLayerOf(log);

    CspOracle oracle;
    for (const LayerId &layer : log.touchedLayers()) {
        std::vector<AccessRecord> h = log.layerHistory(layer);
        if (layer == corrupted) {
            std::vector<std::size_t> writes;
            for (std::size_t i = 0; i < h.size(); i++) {
                if (h[i].kind == AccessKind::Write)
                    writes.push_back(i);
            }
            ASSERT_GE(writes.size(), 2u);
            std::swap(h[writes[0]].subnet, h[writes[1]].subnet);
        }
        oracle.auditLayer(layer, h);
    }
    ASSERT_FALSE(oracle.ok());
    for (const CspViolation &v : oracle.violations())
        EXPECT_EQ(v.layer, corrupted) << describe(oracle.violations());
}

} // namespace
} // namespace naspipe
