/**
 * @file
 * CommitGate property tests: adversarial concurrent schedules.
 *
 * Each trial builds a random set of causal chains (layers shared by
 * random subsets of subnets), then releases one thread per subnet in
 * randomized order with randomized injected sleeps. Threads acquire
 * their layers via waitReadable() and commit after a deliberate delay
 * between "becoming readable" and "committing" — the widest possible
 * window for ordering bugs. The property: whatever the OS does, every
 * layer's observed access history is exactly its registered chain in
 * ascending sequence order, i.e. sequentially equivalent.
 *
 * Runs under `ctest -L exec`, which CI exercises under
 * ThreadSanitizer (-DNASPIPE_TSAN=ON).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/commit_gate.h"

namespace naspipe {
namespace {

struct Trial {
    int subnets = 0;
    /// chain per layer key: ascending subnet IDs
    std::map<std::uint64_t, std::vector<SubnetId>> chains;
};

Trial
makeTrial(std::uint64_t seed, int subnets, int layers)
{
    Xoshiro256StarStar rng(seed);
    Trial trial;
    trial.subnets = subnets;
    for (int l = 0; l < layers; l++) {
        auto key = static_cast<std::uint64_t>(l);
        for (SubnetId sn = 0; sn < subnets; sn++) {
            // ~60% membership; ascending by construction.
            if (rng.nextBelow(10) < 6)
                trial.chains[key].push_back(sn);
        }
        if (trial.chains[key].empty())
            trial.chains[key].push_back(
                static_cast<SubnetId>(rng.nextBelow(
                    static_cast<std::uint64_t>(subnets))));
    }
    return trial;
}

/** Run one trial; returns the per-layer observed access order. */
std::map<std::uint64_t, std::vector<SubnetId>>
runTrial(const Trial &trial, std::uint64_t scheduleSeed)
{
    CommitGate gate;
    for (const auto &[key, chain] : trial.chains) {
        for (SubnetId sn : chain)
            gate.registerActivation(key, sn);
    }

    std::mutex observedMu;
    std::map<std::uint64_t, std::vector<SubnetId>> observed;

    // Per-thread deterministic sleep schedule; the *thread start
    // order* is itself shuffled so early subnets often start last.
    std::vector<SubnetId> startOrder;
    for (SubnetId sn = 0; sn < trial.subnets; sn++)
        startOrder.push_back(sn);
    Xoshiro256StarStar shuffleRng(scheduleSeed);
    for (std::size_t i = startOrder.size(); i > 1; i--) {
        std::swap(startOrder[i - 1],
                  startOrder[static_cast<std::size_t>(
                      shuffleRng.nextBelow(i))]);
    }

    std::vector<std::thread> threads;
    for (SubnetId sn : startOrder) {
        threads.emplace_back([&trial, &gate, &observedMu, &observed,
                              scheduleSeed, sn] {
            Xoshiro256StarStar rng(deriveSeed(
                scheduleSeed, "sleep") ^
                static_cast<std::uint64_t>(sn));
            for (const auto &[key, chain] : trial.chains) {
                if (std::find(chain.begin(), chain.end(), sn) ==
                    chain.end()) {
                    continue;
                }
                CommitGate::Claim claim = gate.resolve(key, sn);
                gate.waitReadable(claim);
                {
                    std::lock_guard<std::mutex> lock(observedMu);
                    observed[key].push_back(sn);
                }
                // Widen the readable->commit window: the next
                // activator must still not slip in between.
                if (rng.nextBelow(3) == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(
                            rng.nextBelow(200)));
                }
                gate.commit(claim);
            }
        });
        // Occasionally stagger thread creation itself.
        if (shuffleRng.nextBelow(4) == 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(50));
        }
    }
    for (auto &t : threads)
        t.join();
    return observed;
}

TEST(CommitGateProperties, RandomSchedulesObserveSequentialOrder)
{
    for (std::uint64_t seed = 1; seed <= 6; seed++) {
        Trial trial = makeTrial(seed, 12, 10);
        auto observed = runTrial(trial, deriveSeed(seed, "sched"));
        ASSERT_EQ(observed.size(), trial.chains.size())
            << "seed " << seed;
        for (const auto &[key, chain] : trial.chains) {
            EXPECT_EQ(observed[key], chain)
                << "layer " << key << " out of causal order (seed "
                << seed << ")";
        }
    }
}

TEST(CommitGateProperties, EveryCommitIsCounted)
{
    Trial trial = makeTrial(42, 8, 6);
    std::size_t expected = 0;
    for (const auto &[key, chain] : trial.chains)
        expected += chain.size();

    CommitGate gate;
    for (const auto &[key, chain] : trial.chains) {
        for (SubnetId sn : chain)
            gate.registerActivation(key, sn);
    }
    std::vector<std::thread> threads;
    for (SubnetId sn = 0; sn < trial.subnets; sn++) {
        threads.emplace_back([&trial, &gate, sn] {
            for (const auto &[key, chain] : trial.chains) {
                if (std::find(chain.begin(), chain.end(), sn) ==
                    chain.end()) {
                    continue;
                }
                CommitGate::Claim claim = gate.resolve(key, sn);
                gate.waitReadable(claim);
                gate.commit(claim);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(gate.commits(), expected);
    for (const auto &[key, chain] : trial.chains)
        EXPECT_EQ(gate.committedOf(key), chain.size());
}

} // namespace
} // namespace naspipe
