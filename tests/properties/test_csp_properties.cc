/**
 * @file
 * Property sweeps over the CSP scheduler: for any seed, space shape
 * and GPU count, CSP executions must be sequentially equivalent and
 * bitwise equal to pure sequential training.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "runtime/pipeline_runtime.h"
#include "supernet/search_space.h"

namespace naspipe {
namespace {

/// (seed, numBlocks, choicesPerBlock, gpus, skipMass)
using CspCase = std::tuple<std::uint64_t, int, int, int, double>;

class CspProperty : public ::testing::TestWithParam<CspCase>
{
};

TEST_P(CspProperty, SequentialEquivalenceAndBitwiseMatch)
{
    auto [seed, blocks, choices, gpus, skip] = GetParam();
    SearchSpace space("prop", SpaceFamily::Nlp, blocks, choices,
                      seed, skip);

    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = gpus;
    config.totalSubnets = 20;
    config.seed = seed;
    RunResult pipelined = runTraining(space, config);
    ASSERT_FALSE(pipelined.oom);
    ASSERT_EQ(pipelined.metrics.finishedSubnets, 20);

    // Property 1: every layer's access history is R/W pairs in
    // ascending subnet order.
    EXPECT_EQ(pipelined.metrics.causalViolations, 0);
    EXPECT_TRUE(
        pipelined.store->accessLog().allSequentiallyEquivalent());

    // Property 2: the final weights equal sequential training's,
    // bitwise.
    ParameterStore reference(space, seed);
    NumericExecutor::Config ec;
    ec.dataSeed = deriveSeed(seed, "data");
    ec.batch = pipelined.metrics.batch;
    NumericExecutor exec(reference, ec);
    for (const Subnet &sn : pipelined.sampled)
        exec.trainSequential(sn);
    EXPECT_EQ(pipelined.supernetHash, reference.supernetHash());

    // Property 3: per-subnet losses match sequential training's.
    for (std::size_t i = 0; i < pipelined.sampled.size(); i++) {
        EXPECT_EQ(pipelined.losses.at(pipelined.sampled[i].id()),
                  exec.lossHistory()[i])
            << "subnet " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CspProperty,
    ::testing::Values(
        // Dense sharing, shallow pipelines.
        CspCase{1, 6, 2, 2, 0.0}, CspCase{2, 6, 2, 3, 0.0},
        // The pathological case: every subnet identical.
        CspCase{3, 4, 1, 2, 0.0},
        // Moderate spaces across GPU counts.
        CspCase{4, 12, 4, 2, 0.0}, CspCase{5, 12, 4, 4, 0.0},
        CspCase{6, 12, 4, 8, 0.0}, CspCase{7, 16, 6, 4, 0.0},
        // Skip-heavy (variable-depth) spaces.
        CspCase{8, 12, 4, 4, 0.4}, CspCase{9, 16, 6, 8, 0.5},
        CspCase{10, 8, 3, 4, 0.25},
        // More stages than blocks (empty stage ranges).
        CspCase{11, 4, 3, 6, 0.0},
        // Single GPU degenerate pipeline.
        CspCase{12, 10, 3, 1, 0.0}));

/// GPU-count pairs whose outcomes must agree bitwise.
class CspCrossGpuProperty
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(CspCrossGpuProperty, OutcomeIndependentOfGpuCount)
{
    auto [gpusA, gpusB] = GetParam();
    SearchSpace space("prop", SpaceFamily::Cv, 12, 5, 21, 0.3);

    auto runWith = [&space](int gpus) {
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = gpus;
        config.totalSubnets = 24;
        config.seed = 21;
        config.batch = 16;  // pinned across GPU counts (paper §5.2)
        return runTraining(space, config);
    };
    RunResult a = runWith(gpusA);
    RunResult b = runWith(gpusB);
    ASSERT_FALSE(a.oom);
    ASSERT_FALSE(b.oom);
    EXPECT_EQ(a.supernetHash, b.supernetHash);
    EXPECT_EQ(a.losses, b.losses);
    EXPECT_EQ(a.bestSubnet, b.bestSubnet);
}

INSTANTIATE_TEST_SUITE_P(GpuPairs, CspCrossGpuProperty,
                         ::testing::Values(std::pair{1, 2},
                                           std::pair{2, 4},
                                           std::pair{4, 8},
                                           std::pair{3, 6},
                                           std::pair{1, 8}));

} // namespace
} // namespace naspipe
