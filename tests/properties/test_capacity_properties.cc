/**
 * @file
 * Capacity-planner property sweeps: monotonicity and conservation
 * laws that must hold for every (system, space, depth) combination.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "memory/swap_model.h"
#include "runtime/pipeline_runtime.h"
#include "supernet/sampler.h"

namespace naspipe {
namespace {

std::vector<SystemModel>
allSystems()
{
    return {naspipeSystem(), gpipeSystem(), pipedreamSystem(),
            vpipeSystem(), naspipeWithoutPredictor()};
}

class CapacityProperty
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CapacityProperty, InvariantsHoldForEverySystemAndDepth)
{
    SearchSpace space = makeSpaceByName(GetParam());
    CapacityPlanner planner(space, GpuConfig{});
    for (const SystemModel &system : allSystems()) {
        std::uint64_t lastResident = UINT64_MAX;
        int lastBatch = -1;
        for (int gpus : {2, 4, 8, 16, 32}) {
            CapacityPlan plan = planner.plan(system, gpus);

            // Resident parameters per GPU shrink with depth.
            EXPECT_LE(plan.residentParamBytesPerGpu, lastResident)
                << system.name << " @ " << gpus;
            lastResident = plan.residentParamBytesPerGpu;

            if (plan.fits) {
                // Capacity is never exceeded.
                EXPECT_LE(plan.residentParamBytesPerGpu +
                              plan.activationBytesPerGpu +
                              CapacityPlanner::kReserveBytes,
                          GpuConfig{}.memoryBytes)
                    << system.name << " @ " << gpus;
                // Batch respects the family cap and minimum.
                EXPECT_GE(plan.batch, 8);
                EXPECT_LE(plan.batch,
                          defaultActivationModel(space.family())
                              .maxBatch);
                // Once a system fits, more GPUs never shrink the
                // batch (residency pressure only falls).
                EXPECT_GE(plan.batch, lastBatch)
                    << system.name << " @ " << gpus;
                lastBatch = plan.batch;
            } else {
                EXPECT_EQ(plan.batch, 0);
            }

            // Pinned-batch planning agrees with free planning at the
            // free plan's own batch.
            if (plan.fits) {
                CapacityPlan pinned = planner.planWithBatch(
                    system, gpus, plan.batch);
                EXPECT_TRUE(pinned.fits)
                    << system.name << " @ " << gpus;
                EXPECT_EQ(pinned.batch, plan.batch);
                // And a batch twice the free optimum must not fit
                // unless the cap bound it first.
                if (plan.batch <
                    defaultActivationModel(space.family()).maxBatch) {
                    CapacityPlan doubled = planner.planWithBatch(
                        system, gpus, plan.batch * 2);
                    EXPECT_FALSE(doubled.fits)
                        << system.name << " @ " << gpus;
                }
            }

            // CPU memory: exactly the supernet for swap systems.
            if (system.memory == MemoryMode::AllResident) {
                EXPECT_EQ(plan.cpuMemBytesTotal, 0u);
            } else {
                EXPECT_EQ(plan.cpuMemBytesTotal,
                          space.totalParamBytes());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllSpaces, CapacityProperty,
                         ::testing::Values("NLP.c0", "NLP.c1",
                                           "NLP.c2", "NLP.c3",
                                           "CV.c1", "CV.c2",
                                           "CV.c3"));

class AdversarialSequence
    : public ::testing::TestWithParam<int>  // GPU count
{
};

TEST_P(AdversarialSequence, FullyDependentStreamSerializesSafely)
{
    // Every subnet identical: the adversarial worst case. CSP must
    // serialize them completely — with D stages the pipeline can at
    // best keep one subnet in flight, so the bubble approaches
    // (D-1)/D — and still match sequential training bitwise.
    int gpus = GetParam();
    SearchSpace space = makeTinySpace();
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = gpus;
    config.totalSubnets = 12;
    config.seed = 3;
    config.samplerFactory = [](const SearchSpace &,
                               std::uint64_t) {
        return std::make_unique<FixedSequenceSampler>(
            std::vector<std::vector<std::uint16_t>>{{1, 2, 0, 1}});
    };
    RunResult r = runTraining(space, config);
    ASSERT_FALSE(r.oom);
    EXPECT_EQ(r.metrics.causalViolations, 0);
    if (gpus > 1) {
        EXPECT_GT(r.metrics.bubbleRatio,
                  0.8 * (gpus - 1.0) / gpus);
    }

    // Bitwise equivalence with sequential training of the same list.
    ParameterStore reference(space, 3);
    NumericExecutor::Config ec;
    ec.dataSeed = deriveSeed(3, "data");
    ec.batch = r.metrics.batch;
    NumericExecutor exec(reference, ec);
    for (const Subnet &sn : r.sampled)
        exec.trainSequential(sn);
    EXPECT_EQ(r.supernetHash, reference.supernetHash());
}

TEST_P(AdversarialSequence, InterleavedChainsOutrunOneChain)
{
    // Three disjoint dependent chains interleaved (the 3-cycle
    // sequence: subnets at distance 3 are identical, neighbours are
    // disjoint) must pipeline strictly better than the single fully
    // dependent chain above — CSP extracts exactly the parallelism
    // the dependency structure allows.
    int gpus = GetParam();
    SearchSpace space = makeTinySpace();
    auto runWith = [&space, gpus](
                       std::vector<std::vector<std::uint16_t>> seq) {
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = gpus;
        config.totalSubnets = 24;
        config.seed = 3;
        config.samplerFactory =
            [seq](const SearchSpace &, std::uint64_t) {
                return std::make_unique<FixedSequenceSampler>(seq);
            };
        return runTraining(space, config);
    };
    RunResult chains = runWith(
        {{0, 0, 0, 0}, {1, 1, 1, 1}, {2, 2, 2, 2}});
    RunResult serial = runWith({{1, 2, 0, 1}});
    ASSERT_FALSE(chains.oom);
    ASSERT_FALSE(serial.oom);
    EXPECT_EQ(chains.metrics.causalViolations, 0);
    if (gpus > 1) {
        EXPECT_LT(chains.metrics.bubbleRatio,
                  serial.metrics.bubbleRatio);
        EXPECT_GT(chains.metrics.subnetsPerHour,
                  serial.metrics.subnetsPerHour);
    }
}

INSTANTIATE_TEST_SUITE_P(Depths, AdversarialSequence,
                         ::testing::Values(2, 4, 8));

} // namespace
} // namespace naspipe
