/**
 * @file
 * Property tests of the numeric kernel layer (src/tensor/kernels/):
 * the pairwise-tree reductions match the normative recursive spec at
 * every length, are invariant to how the caller buffers the operands,
 * and are bitwise stable; the fp16 storage rounding is an exact
 * round-trip on every representable half and breaks ties to even on
 * the documented boundary cases.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "memory/arena.h"
#include "tensor/kernels/precision.h"
#include "tensor/kernels/reduce.h"

namespace naspipe {
namespace {

/**
 * The normative tree shape, straight from the spec in
 * tensor/kernels/reduce.h: split at the largest power of two
 * strictly below n (the half point when n is itself a power of two)
 * and add left + right. The production kernel reduces power-of-two
 * segments with an in-place ladder instead of recursion; this
 * reference is the shape it must be bitwise equal to.
 */
float
refTreeSum(const float *a, std::size_t n)
{
    if (n == 0)
        return 0.0f;
    if (n == 1)
        return a[0];
    std::size_t p = 1;
    while (p * 2 < n)
        p *= 2;
    return refTreeSum(a, p) + refTreeSum(a + p, n - p);
}

/** Deterministic test operands: counter-mode floats in [-1, 1). */
std::vector<float>
operands(std::size_t n, std::uint64_t tag)
{
    Philox4x32 rng(deriveSeed(0x6e756d, tag));
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; i++)
        v[i] = 2.0f * rng.uniformFloat(i) - 1.0f;
    return v;
}

/** Bitwise float equality (EXPECT_EQ would treat -0.0f == 0.0f). */
::testing::AssertionResult
sameBits(float a, float b)
{
    std::uint32_t ab, bb;
    std::memcpy(&ab, &a, 4);
    std::memcpy(&bb, &b, 4);
    if (ab == bb)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " (0x" << std::hex << ab << ") vs " << b << " (0x"
           << bb << ")";
}

TEST(TreeReduceProperties, SumMatchesRecursiveSpecAtEveryLength)
{
    // Every length through several ladder blocks, plus lengths that
    // straddle the 256-element block and the multi-block recursion.
    std::vector<std::size_t> lengths;
    for (std::size_t n = 0; n <= 300; n++)
        lengths.push_back(n);
    for (std::size_t n : {511u, 512u, 513u, 1000u, 4095u, 4096u,
                          4097u, 6000u})
        lengths.push_back(n);
    for (std::size_t n : lengths) {
        std::vector<float> a = operands(n, n);
        EXPECT_TRUE(sameBits(kernels::treeSum(a.data(), n),
                             refTreeSum(a.data(), n)))
            << "n=" << n;
    }
}

TEST(TreeReduceProperties, SumIsInvariantToCallerBuffering)
{
    // The result is a pure function of (values, length): re-homing
    // the operand at any offset inside a larger buffer — every
    // alignment, an Arena allocation, a fresh heap vector — cannot
    // change a bit. This is the chunk-boundary invariance the
    // zero-copy views rely on.
    for (std::size_t n : {1u, 7u, 255u, 256u, 257u, 1000u, 4096u}) {
        std::vector<float> a = operands(n, 17 + n);
        const float golden = kernels::treeSum(a.data(), n);
        for (std::size_t offset : {1u, 2u, 3u, 5u, 64u}) {
            std::vector<float> shifted(n + offset, 0.0f);
            std::copy(a.begin(), a.end(), shifted.begin() + offset);
            EXPECT_TRUE(sameBits(
                kernels::treeSum(shifted.data() + offset, n), golden))
                << "n=" << n << " offset=" << offset;
        }
        Arena arena;
        TensorView v = arena.allocVector(n);
        std::copy(a.begin(), a.end(), v.data());
        EXPECT_TRUE(sameBits(kernels::treeSum(v.data(), n), golden))
            << "n=" << n << " (arena)";
    }
}

TEST(TreeReduceProperties, SumIsBitwiseStableAcrossCalls)
{
    std::vector<float> a = operands(5000, 99);
    const float first = kernels::treeSum(a.data(), a.size());
    for (int rep = 0; rep < 8; rep++)
        EXPECT_TRUE(
            sameBits(kernels::treeSum(a.data(), a.size()), first));
}

TEST(TreeReduceProperties, DerivedReductionsFixLeavesThenTree)
{
    // dot and squared-diff reduce to: materialize the per-element
    // leaf values, then the SAME tree as treeSum. No fused
    // multiply-add may leak across a tree edge.
    for (std::size_t n : {1u, 3u, 100u, 256u, 300u, 4096u, 5000u}) {
        std::vector<float> a = operands(n, 1000 + n);
        std::vector<float> b = operands(n, 2000 + n);
        std::vector<float> prod(n), sqdiff(n);
        for (std::size_t i = 0; i < n; i++) {
            prod[i] = a[i] * b[i];
            float d = a[i] - b[i];
            sqdiff[i] = d * d;
        }
        EXPECT_TRUE(sameBits(kernels::treeDot(a.data(), b.data(), n),
                             refTreeSum(prod.data(), n)))
            << "dot n=" << n;
        EXPECT_TRUE(sameBits(kernels::treeSquareDiffSum(
                                 a.data(), b.data(), n),
                             refTreeSum(sqdiff.data(), n)))
            << "sqdiff n=" << n;
        EXPECT_TRUE(sameBits(kernels::treeMeanSquare(a.data(), n),
                             kernels::treeDot(a.data(), a.data(), n) /
                                 static_cast<float>(n)))
            << "meanSquare n=" << n;
    }
}

TEST(TreeReduceProperties, EmptySumIsPositiveZero)
{
    float zero = kernels::treeSum(nullptr, 0);
    std::uint32_t bits;
    std::memcpy(&bits, &zero, 4);
    EXPECT_EQ(bits, 0u);
}

TEST(PrecisionProperties, HalfRoundTripIsExactOnEveryRepresentable)
{
    // Storage rounding is the identity on values that already fit in
    // binary16: decode every one of the 65536 half patterns and
    // re-encode it. NaNs need not preserve payloads bit-for-bit, but
    // must stay NaN.
    for (std::uint32_t h = 0; h < 0x10000; h++) {
        const auto half = static_cast<std::uint16_t>(h);
        const float v = kernels::halfBitsToFp32(half);
        const std::uint16_t back = kernels::fp32ToHalfBits(v);
        if (std::isnan(v)) {
            EXPECT_TRUE((back & 0x7c00) == 0x7c00 &&
                        (back & 0x03ff) != 0)
                << "half 0x" << std::hex << h;
            continue;
        }
        EXPECT_EQ(back, half) << "half 0x" << std::hex << h;
    }
}

TEST(PrecisionProperties, RoundsToNearestEvenOnTies)
{
    // Half spacing at 1.0 is 2^-10, so 1 + (2k+1) * 2^-11 is exactly
    // halfway between neighbors; RNE picks the even mantissa.
    EXPECT_EQ(kernels::fp32ToHalfBits(1.0f + 0x1.0p-11f), 0x3c00);
    EXPECT_EQ(kernels::fp32ToHalfBits(1.0f + 3 * 0x1.0p-11f),
              0x3c02);
    // Just off the tie rounds to nearest, not to even.
    EXPECT_EQ(kernels::fp32ToHalfBits(1.0f + 0x1.02p-11f), 0x3c01);

    // Subnormal boundary: 2^-25 ties between 0 and the smallest
    // subnormal 2^-24 — even is zero; anything above the tie is the
    // subnormal; below vanishes.
    EXPECT_EQ(kernels::fp32ToHalfBits(0x1.0p-25f), 0x0000);
    EXPECT_EQ(kernels::fp32ToHalfBits(-0x1.0p-25f), 0x8000);
    EXPECT_EQ(kernels::fp32ToHalfBits(0x1.8p-25f), 0x0001);
    EXPECT_EQ(kernels::fp32ToHalfBits(0x1.0p-26f), 0x0000);
    // 3 * 2^-25 ties between subnormals 1 and 2 — even wins again.
    EXPECT_EQ(kernels::fp32ToHalfBits(3 * 0x1.0p-25f), 0x0002);

    // Overflow boundary: halfway between the half maximum 65504 and
    // the next step 65536 rounds (to even) into infinity.
    EXPECT_EQ(kernels::fp32ToHalfBits(65520.0f), 0x7c00);
    EXPECT_EQ(kernels::fp32ToHalfBits(65519.996f), 0x7bff);
    EXPECT_EQ(kernels::fp32ToHalfBits(-65520.0f), 0xfc00);

    // The fp32 mode's storage rounding is the identity.
    EXPECT_TRUE(sameBits(
        kernels::quantize(kernels::PrecisionMode::Fp32, 0.1f), 0.1f));
    // And fp16 quantize really is decode(encode(v)).
    const float q =
        kernels::quantize(kernels::PrecisionMode::Fp16Rne, 0.1f);
    EXPECT_TRUE(sameBits(
        q, kernels::halfBitsToFp32(kernels::fp32ToHalfBits(0.1f))));
}

} // namespace
} // namespace naspipe
