/**
 * @file
 * Partitioning property sweeps over random subnets: contiguity,
 * coverage, optimal bottleneck vs the even baseline.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "partition/partitioner.h"
#include "supernet/sampler.h"

namespace naspipe {
namespace {

/// (seed, numBlocks, choices, stages, skipMass)
using PartCase = std::tuple<std::uint64_t, int, int, int, double>;

class PartitionProperty : public ::testing::TestWithParam<PartCase>
{
};

TEST_P(PartitionProperty, BalancedPartitionInvariants)
{
    auto [seed, blocks, choices, stages, skip] = GetParam();
    SearchSpace space("part", SpaceFamily::Nlp, blocks, choices, seed,
                      skip);
    Partitioner part(space, space.referenceBatch());
    UniformSampler sampler(space, seed);

    for (int trial = 0; trial < 10; trial++) {
        Subnet sn = sampler.next();
        SubnetPartition p = part.balanced(sn, stages);

        // Coverage: every block owned by exactly one stage, and
        // stageOf agrees with the ranges.
        int total = 0;
        for (int s = 0; s < stages; s++) {
            for (int b = p.firstBlock(s); b <= p.lastBlock(s); b++) {
                EXPECT_EQ(p.stageOf(b), s);
                total++;
            }
        }
        EXPECT_EQ(total, blocks);

        // Monotone contiguity: ranges never interleave.
        for (int s = 0; s + 1 < stages; s++)
            EXPECT_LE(p.firstBlock(s), p.firstBlock(s + 1));

        // Optimality vs the static even split.
        double balancedMax = part.cost(sn, p).maxMs;
        double evenMax =
            part.cost(sn, Partitioner::even(blocks, stages)).maxMs;
        EXPECT_LE(balancedMax, evenMax + 1e-9) << sn.toString();

        // The bottleneck can never undercut totalMs / stages.
        double totalMs = part.cost(sn, p).totalMs;
        EXPECT_GE(balancedMax + 1e-9, totalMs / stages);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Values(PartCase{1, 8, 4, 2, 0.0},
                      PartCase{2, 16, 6, 4, 0.0},
                      PartCase{3, 24, 8, 8, 0.0},
                      PartCase{4, 48, 24, 8, 0.37},
                      PartCase{5, 32, 12, 8, 0.49},
                      PartCase{6, 9, 3, 5, 0.0},
                      PartCase{7, 48, 72, 16, 0.37},
                      PartCase{8, 12, 4, 12, 0.3}));

class BatchInvariance : public ::testing::TestWithParam<int>
{
};

TEST_P(BatchInvariance, PartitionShapeIndependentOfBatch)
{
    // Linear batch scaling multiplies every block cost equally, so
    // the optimal cuts must not move.
    SearchSpace space("part", SpaceFamily::Cv, 16, 6, 11);
    UniformSampler sampler(space, 3);
    Subnet sn = sampler.next();
    Partitioner atRef(space, space.referenceBatch());
    Partitioner atB(space, GetParam());
    EXPECT_EQ(atRef.balanced(sn, 4), atB.balanced(sn, 4));
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchInvariance,
                         ::testing::Values(1, 8, 32, 128, 512));

} // namespace
} // namespace naspipe
