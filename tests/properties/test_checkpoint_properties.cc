/**
 * @file
 * Checkpoint-format property tests.
 *
 * Two properties carry the whole recovery design: (1) save→load is
 * the identity on a parameter store — including mid-run, including
 * across GPU counts (the checkpointed state at a drain barrier is a
 * pure function of the completed count under CSP); (2) no corrupted
 * or truncated input ever crashes the process — every damaged byte
 * surfaces as a clean `false` from load.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "runtime/pipeline_runtime.h"
#include "supernet/search_space.h"
#include "train/param_store.h"
#include "train/run_checkpoint.h"

namespace naspipe {
namespace {

/** A store with a few deterministic training writes applied. */
void
scribble(ParameterStore &store)
{
    store.write(LayerId{1, 2}, 0).weight[3] = 0.123f;
    store.write(LayerId{0, 0}, 1).bias[7] = -4.5f;
    store.write(LayerId{1, 2}, 2).weight[0] += 1.0f;
    store.read(LayerId{2, 1}, 3);
}

std::string
serialized(ParameterStore &store)
{
    std::stringstream buffer;
    EXPECT_TRUE(store.save(buffer));
    return buffer.str();
}

TEST(CheckpointProperties, StoreSaveLoadHashIdentity)
{
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    scribble(store);

    std::stringstream buffer(serialized(store));
    ParameterStore restored(space, 7);
    ASSERT_TRUE(restored.load(buffer));
    EXPECT_EQ(store.supernetHash(), restored.supernetHash());
    EXPECT_EQ(store.touchedHash(), restored.touchedHash());
}

TEST(CheckpointProperties, StoreLoadPreservesVersions)
{
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    scribble(store);
    ASSERT_EQ(store.version(LayerId{1, 2}), 2u);

    std::stringstream buffer(serialized(store));
    ParameterStore restored(space, 7);
    ASSERT_TRUE(restored.load(buffer));
    EXPECT_EQ(restored.version(LayerId{1, 2}), 2u);
    EXPECT_EQ(restored.version(LayerId{0, 0}), 1u);
    EXPECT_EQ(restored.version(LayerId{2, 1}), 0u);
}

TEST(CheckpointProperties, MidRunStoreHashIdenticalAcrossGpuCounts)
{
    // Train the same configuration on 2 and 4 GPUs, checkpointing at
    // the same drain boundary. Under CSP the mid-run store state is a
    // pure function of the completed count, so the two checkpoints'
    // stores must hash identically after a round trip.
    SearchSpace space("ckpt-prop", SpaceFamily::Nlp, 12, 4, 5);
    std::uint64_t hashes[2] = {0, 0};
    int slot = 0;
    for (int gpus : {2, 4}) {
        std::string path = ::testing::TempDir() +
                           "naspipe_ckpt_prop_" +
                           std::to_string(gpus) + ".ckpt";
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = gpus;
        config.totalSubnets = 18;
        config.seed = 7;
        config.batch = 16;
        config.ckptInterval = 8;
        config.ckptPath = path;
        RunResult result = runTraining(space, config);
        ASSERT_FALSE(result.oom);
        ASSERT_FALSE(result.failed) << result.error;

        RunCheckpoint ckpt;
        ASSERT_TRUE(ckpt.loadFile(path));
        EXPECT_EQ(ckpt.completed, 16u) << gpus << " GPUs";

        std::istringstream storeBytes(ckpt.storeBytes);
        ParameterStore restored(space, 7);
        ASSERT_TRUE(restored.load(storeBytes));
        hashes[slot++] = restored.supernetHash();
        std::remove(path.c_str());
    }
    EXPECT_EQ(hashes[0], hashes[1]);
}

TEST(CheckpointProperties, EveryStoreByteFlipIsRejectedCleanly)
{
    // Flip one byte at a sweep of positions covering the header and
    // the payload: load must return false every time — never abort,
    // never silently accept.
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    scribble(store);
    std::string bytes = serialized(store);
    ASSERT_GT(bytes.size(), 64u);

    for (std::size_t pos = 0; pos < bytes.size();
         pos += (pos < 64 ? 1 : 37)) {
        std::string damaged = bytes;
        damaged[pos] ^= 0x01;
        std::stringstream buffer(damaged);
        ParameterStore restored(space, 7);
        EXPECT_FALSE(restored.load(buffer))
            << "byte flip at " << pos << " accepted";
    }
}

TEST(CheckpointProperties, EveryStoreTruncationIsRejectedCleanly)
{
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    scribble(store);
    std::string bytes = serialized(store);

    for (std::size_t len = 0; len < bytes.size();
         len += (len < 64 ? 1 : 53)) {
        std::stringstream buffer(bytes.substr(0, len));
        ParameterStore restored(space, 7);
        EXPECT_FALSE(restored.load(buffer))
            << "truncation to " << len << " bytes accepted";
    }
}

TEST(CheckpointProperties, StoreMismatchReturnsFalseNotFatal)
{
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    std::string bytes = serialized(store);

    // Wrong seed.
    {
        std::stringstream buffer(bytes);
        ParameterStore otherSeed(space, 8);
        EXPECT_FALSE(otherSeed.load(buffer));
    }
    // Wrong space shape.
    {
        SearchSpace bigger("other", SpaceFamily::Nlp, 6, 3, 5);
        std::stringstream buffer(bytes);
        ParameterStore otherShape(bigger, 7);
        EXPECT_FALSE(otherShape.load(buffer));
    }
}

TEST(CheckpointProperties, RunCheckpointRoundTrip)
{
    RunCheckpoint ckpt;
    ckpt.seed = 42;
    ckpt.spaceBlocks = 12;
    ckpt.spaceChoices = 4;
    ckpt.totalSubnets = 64;
    ckpt.completed = 3;
    ckpt.simSeconds = 12.5;
    ckpt.busySeconds = 40.25;
    ckpt.checkpointsWritten = 2;
    ckpt.losses = {0.5, 0.4, 0.3};
    ckpt.completionSec = {1.0, 2.0, 3.0};
    ckpt.storeBytes = "store-payload-stand-in";
    ckpt.accessLogBytes = std::string("log\0bytes", 9);

    std::stringstream buffer;
    ASSERT_TRUE(ckpt.save(buffer));

    RunCheckpoint loaded;
    ASSERT_TRUE(loaded.load(buffer));
    EXPECT_EQ(loaded.seed, 42u);
    EXPECT_EQ(loaded.spaceBlocks, 12u);
    EXPECT_EQ(loaded.spaceChoices, 4u);
    EXPECT_EQ(loaded.totalSubnets, 64u);
    EXPECT_EQ(loaded.completed, 3u);
    EXPECT_EQ(loaded.simSeconds, 12.5);
    EXPECT_EQ(loaded.busySeconds, 40.25);
    EXPECT_EQ(loaded.checkpointsWritten, 2u);
    EXPECT_EQ(loaded.losses, ckpt.losses);
    EXPECT_EQ(loaded.completionSec, ckpt.completionSec);
    EXPECT_EQ(loaded.storeBytes, ckpt.storeBytes);
    EXPECT_EQ(loaded.accessLogBytes, ckpt.accessLogBytes);
}

TEST(CheckpointProperties, RunCheckpointCorruptionRejected)
{
    RunCheckpoint ckpt;
    ckpt.seed = 42;
    ckpt.spaceBlocks = 12;
    ckpt.spaceChoices = 4;
    ckpt.totalSubnets = 64;
    ckpt.completed = 2;
    ckpt.losses = {0.5, 0.4};
    ckpt.completionSec = {1.0, 2.0};
    ckpt.storeBytes = "store";
    std::stringstream buffer;
    ASSERT_TRUE(ckpt.save(buffer));
    std::string bytes = buffer.str();

    for (std::size_t pos = 0; pos < bytes.size();
         pos += (pos < 32 ? 1 : 11)) {
        std::string damaged = bytes;
        damaged[pos] ^= 0x80;
        std::stringstream in(damaged);
        RunCheckpoint loaded;
        EXPECT_FALSE(loaded.load(in))
            << "byte flip at " << pos << " accepted";
    }
    for (std::size_t len = 0; len < bytes.size(); len += 9) {
        std::stringstream in(bytes.substr(0, len));
        RunCheckpoint loaded;
        EXPECT_FALSE(loaded.load(in))
            << "truncation to " << len << " bytes accepted";
    }
}

TEST(CheckpointProperties, RunCheckpointRejectsInconsistentCounts)
{
    // losses/completionSec must both have exactly `completed`
    // entries; a checkpoint violating that is structurally invalid
    // even when its checksum verifies.
    RunCheckpoint ckpt;
    ckpt.totalSubnets = 8;
    ckpt.completed = 3;
    ckpt.losses = {0.5, 0.4};  // too short
    ckpt.completionSec = {1.0, 2.0, 3.0};
    std::stringstream buffer;
    ASSERT_TRUE(ckpt.save(buffer));
    RunCheckpoint loaded;
    EXPECT_FALSE(loaded.load(buffer));
}

TEST(CheckpointProperties, AccessLogRoundTrip)
{
    AccessLog log;
    log.record(LayerId{0, 1}, 2, AccessKind::Read);
    log.record(LayerId{0, 1}, 2, AccessKind::Write);
    log.record(LayerId{3, 0}, 5, AccessKind::Read);
    std::stringstream buffer;
    log.saveTo(buffer);

    AccessLog loaded;
    ASSERT_TRUE(loaded.loadFrom(buffer));
    EXPECT_EQ(loaded.totalRecords(), log.totalRecords());
    EXPECT_EQ(loaded.renderOrder(LayerId{0, 1}),
              log.renderOrder(LayerId{0, 1}));
    EXPECT_EQ(loaded.renderOrder(LayerId{3, 0}),
              log.renderOrder(LayerId{3, 0}));

    // Appending after a reload continues the global order where the
    // original left off.
    loaded.record(LayerId{3, 0}, 6, AccessKind::Write);
    EXPECT_EQ(loaded.totalRecords(), log.totalRecords() + 1);
}

TEST(CheckpointProperties, AccessLogRejectsDamagedStream)
{
    AccessLog log;
    log.record(LayerId{0, 1}, 2, AccessKind::Read);
    log.record(LayerId{1, 0}, 3, AccessKind::Write);
    std::stringstream buffer;
    log.saveTo(buffer);
    std::string bytes = buffer.str();

    for (std::size_t len = 0; len < bytes.size(); len += 5) {
        std::stringstream in(bytes.substr(0, len));
        AccessLog loaded;
        EXPECT_FALSE(loaded.loadFrom(in))
            << "truncation to " << len << " accepted";
        EXPECT_EQ(loaded.totalRecords(), 0u);
    }
}

/** Write `bytes` verbatim over `path`. */
void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(CheckpointProperties, CorruptRunCheckpointFileIsRejectedCleanly)
{
    // The on-disk half of the fuzz: damage a real NPRC v1 *file* —
    // every byte of the header, a stride through the payload, every
    // truncation prefix — and loadFile must return false each time,
    // never abort. This is the file the CLI's --resume hands to a
    // fresh process, so "clean false" here is what backs exit code 3.
    RunCheckpoint ckpt;
    ckpt.seed = 42;
    ckpt.spaceBlocks = 12;
    ckpt.spaceChoices = 4;
    ckpt.totalSubnets = 16;
    ckpt.completed = 2;
    ckpt.simSeconds = 3.5;
    ckpt.losses = {0.5, 0.4};
    ckpt.completionSec = {1.0, 2.0};
    ckpt.storeBytes = "store-payload-stand-in";
    std::string path =
        ::testing::TempDir() + "naspipe_fuzz_run.ckpt";
    ASSERT_TRUE(ckpt.saveFileAtomic(path));
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 32u);

    for (std::size_t pos = 0; pos < bytes.size();
         pos += (pos < 32 ? 1 : 13)) {
        std::string damaged = bytes;
        damaged[pos] ^= 0x40;
        writeFile(path, damaged);
        RunCheckpoint loaded;
        EXPECT_FALSE(loaded.loadFile(path))
            << "file byte flip at " << pos << " accepted";
    }
    for (std::size_t len = 0; len < bytes.size(); len += 7) {
        writeFile(path, bytes.substr(0, len));
        RunCheckpoint loaded;
        EXPECT_FALSE(loaded.loadFile(path))
            << "file truncation to " << len << " bytes accepted";
    }
    // Undamaged file still loads after the fuzz sweep.
    writeFile(path, bytes);
    RunCheckpoint loaded;
    EXPECT_TRUE(loaded.loadFile(path));
    std::remove(path.c_str());
}

TEST(CheckpointProperties, CorruptStoreFileIsRejectedCleanly)
{
    // Same sweep for a ParameterStore v2 file.
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    scribble(store);
    std::string path =
        ::testing::TempDir() + "naspipe_fuzz_store.bin";
    ASSERT_TRUE(store.saveFile(path));
    std::string bytes = readFile(path);
    ASSERT_GT(bytes.size(), 64u);

    for (std::size_t pos = 0; pos < bytes.size();
         pos += (pos < 64 ? 1 : 41)) {
        std::string damaged = bytes;
        damaged[pos] ^= 0x02;
        writeFile(path, damaged);
        ParameterStore restored(space, 7);
        EXPECT_FALSE(restored.loadFile(path))
            << "file byte flip at " << pos << " accepted";
    }
    for (std::size_t len = 0; len < bytes.size();
         len += (len < 64 ? 1 : 59)) {
        writeFile(path, bytes.substr(0, len));
        ParameterStore restored(space, 7);
        EXPECT_FALSE(restored.loadFile(path))
            << "file truncation to " << len << " bytes accepted";
    }
    writeFile(path, bytes);
    ParameterStore restored(space, 7);
    EXPECT_TRUE(restored.loadFile(path));
    EXPECT_EQ(restored.supernetHash(), store.supernetHash());
    std::remove(path.c_str());
}

TEST(CheckpointProperties, MissingFilesAreCleanFalses)
{
    RunCheckpoint ckpt;
    EXPECT_FALSE(ckpt.loadFile("/nonexistent/naspipe.ckpt"));
    SearchSpace space = makeTinySpace();
    ParameterStore store(space, 7);
    EXPECT_FALSE(store.loadFile("/nonexistent/naspipe_store.bin"));
}

TEST(CheckpointProperties, AtomicSaveLeavesNoTempFileBehind)
{
    RunCheckpoint ckpt;
    ckpt.completed = 0;
    std::string path =
        ::testing::TempDir() + "naspipe_atomic_test.ckpt";
    ASSERT_TRUE(ckpt.saveFileAtomic(path));
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    RunCheckpoint loaded;
    EXPECT_TRUE(loaded.loadFile(path));
    std::remove(path.c_str());
}

} // namespace
} // namespace naspipe
