/**
 * @file
 * Determinism property sweeps: every (system, seed, GPU count)
 * configuration must replay bit-identically, and the seed must be
 * the only source of variation.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "runtime/pipeline_runtime.h"
#include "runtime/replay.h"
#include "supernet/search_space.h"

namespace naspipe {
namespace {

SystemModel
systemByIndex(int index)
{
    switch (index) {
      case 0:
        return naspipeSystem();
      case 1:
        return gpipeSystem();
      case 2:
        return pipedreamSystem();
      case 3:
        return vpipeSystem();
      case 4:
        return naspipeWithoutScheduler();
      case 5:
        return naspipeWithoutPredictor();
      default:
        return naspipeWithoutMirroring();
    }
}

/// (system index, seed, gpus)
using DetCase = std::tuple<int, std::uint64_t, int>;

class DeterminismProperty : public ::testing::TestWithParam<DetCase>
{
};

TEST_P(DeterminismProperty, IdenticalConfigIdenticalOutcome)
{
    auto [sysIndex, seed, gpus] = GetParam();
    SearchSpace space("det", SpaceFamily::Nlp, 10, 4, 9, 0.3);

    auto once = [&] {
        RuntimeConfig config;
        config.system = systemByIndex(sysIndex);
        config.numStages = gpus;
        config.totalSubnets = 16;
        config.seed = seed;
        config.traceEnabled = true;
        return runTraining(space, config);
    };
    RunResult a = once();
    RunResult b = once();
    ASSERT_FALSE(a.oom);
    // Outcome level.
    EXPECT_EQ(a.supernetHash, b.supernetHash);
    EXPECT_EQ(a.losses, b.losses);
    // Schedule level: the task timeline replays tick-exact.
    EXPECT_EQ(ScheduleSignature(*a.trace).hash(),
              ScheduleSignature(*b.trace).hash());
    // Metric level.
    EXPECT_DOUBLE_EQ(a.metrics.samplesPerSec, b.metrics.samplesPerSec);
    EXPECT_DOUBLE_EQ(a.metrics.bubbleRatio, b.metrics.bubbleRatio);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeterminismProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5, 6),
                       ::testing::Values(std::uint64_t{5},
                                         std::uint64_t{77}),
                       ::testing::Values(2, 4)));

class SeedSensitivity : public ::testing::TestWithParam<int>
{
};

TEST_P(SeedSensitivity, DifferentSeedsDifferentTrajectories)
{
    SearchSpace space("det", SpaceFamily::Nlp, 10, 4, 9, 0.3);
    auto runWith = [&](std::uint64_t seed) {
        RuntimeConfig config;
        config.system = systemByIndex(GetParam());
        config.numStages = 4;
        config.totalSubnets = 16;
        config.seed = seed;
        return runTraining(space, config);
    };
    RunResult a = runWith(100);
    RunResult b = runWith(101);
    ASSERT_FALSE(a.oom);
    // Different sampler stream, different init: weights must differ.
    EXPECT_NE(a.supernetHash, b.supernetHash);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SeedSensitivity,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace naspipe
