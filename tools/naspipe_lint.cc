/**
 * @file
 * naspipe_lint — the custom nondeterminism lint's command line.
 *
 * Usage:
 *   naspipe_lint [--baseline FILE] [--write-baseline FILE]
 *                [--list-rules] PATH...
 *
 * Scans every .cc/.h under the given paths with every pass of the
 * static analysis framework (tools/analysis/): the per-file
 * reproducibility rules, the repo-wide atomics pass, and the
 * whole-program lock-discipline pass run over the full source set
 * against the LockRank registry (src/common/lock_rank.h). Exit
 * codes: 0 clean (or all findings baselined), 1 new findings, 2
 * usage or I/O error. The `lint` CMake target runs this over src/,
 * tools/ and tests/ with the checked-in baseline, so a new hazard
 * fails the build.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "lint_rules.h"

namespace {

void
usage(const char *argv0)
{
    std::printf("usage: %s [--baseline FILE] [--write-baseline FILE]"
                " [--list-rules] PATH...\n",
                argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace naspipe::lint;

    std::string baselinePath, writeBaselinePath;
    std::vector<std::string> paths;
    bool listRules = false;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: missing value for %s\n",
                             arg.c_str());
                usage(argv[0]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--baseline")
            baselinePath = value();
        else if (arg == "--write-baseline")
            writeBaselinePath = value();
        else if (arg == "--list-rules")
            listRules = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown argument %s\n",
                         arg.c_str());
            usage(argv[0]);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const RuleInfo &rule : ruleTable())
            std::printf("%-22s %s\n", rule.name.c_str(),
                        rule.description.c_str());
        if (paths.empty())
            return 0;
    }
    if (paths.empty()) {
        usage(argv[0]);
        return 2;
    }

    // Load every source once: the per-file passes consume them one
    // by one, the lock-discipline pass needs the whole program.
    std::vector<SourceFile> sources;
    for (const std::string &path : paths) {
        std::vector<std::string> files = collectSources(path);
        if (files.empty()) {
            std::fprintf(stderr,
                         "error: no .cc/.h sources under %s\n",
                         path.c_str());
            return 2;
        }
        for (const std::string &file : files) {
            std::string error;
            SourceFile source;
            if (!naspipe::analysis::loadSourceFile(file, source,
                                                   &error)) {
                std::fprintf(stderr, "error: %s\n", error.c_str());
                return 2;
            }
            sources.push_back(std::move(source));
        }
    }
    std::size_t scanned = sources.size();

    std::vector<Finding> findings;
    auto append = [&](std::vector<Finding> more) {
        findings.insert(findings.end(),
                        std::make_move_iterator(more.begin()),
                        std::make_move_iterator(more.end()));
    };
    for (const SourceFile &source : sources) {
        append(naspipe::analysis::runLineRules(source));
        append(naspipe::analysis::runAtomicsPass(source));
        append(naspipe::analysis::runRawMutexRule(source));
    }
    append(scanLockDiscipline(sources));

    if (!writeBaselinePath.empty()) {
        std::ofstream out(writeBaselinePath);
        if (!out) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         writeBaselinePath.c_str());
            return 2;
        }
        out << naspipe::analysis::renderBaseline(findings);
        std::printf("baseline: %zu finding(s) written to %s\n",
                    findings.size(), writeBaselinePath.c_str());
        return 0;
    }

    std::set<std::string> baseline;
    std::string error;
    if (!naspipe::analysis::loadBaseline(baselinePath, baseline,
                                     &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    std::size_t fresh =
        naspipe::analysis::applyBaseline(findings, baseline);

    for (const Finding &finding : findings)
        std::printf("%s\n", finding.describe().c_str());
    std::printf("naspipe_lint: %zu file(s), %zu finding(s), "
                "%zu new\n",
                scanned, findings.size(), fresh);
    return fresh == 0 ? 0 : 1;
}
