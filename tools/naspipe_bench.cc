/**
 * @file
 * naspipe_bench — the repo's committed perf trajectory.
 *
 * Runs a pinned benchmark suite and writes one schema-versioned JSON
 * document (naspipe-bench/4) that is committed at the repo root as
 * BENCH_<pr>.json, so the perf trajectory of the codebase is
 * reviewable PR over PR:
 *
 *   - micro: fixed-iteration timings of the numeric plane (layer
 *     forward/backward, sequential subnet step, supernet hash,
 *     checkpoint serialization) — the same workloads as
 *     bench/micro_numeric, without the google-benchmark dependency
 *     so the harness runs everywhere the library builds;
 *   - scaling: the bench/parallel_scaling sweep (threaded executor
 *     at 1/2/4 workers vs the simulator) with the bitwise
 *     sim-vs-threads weight check that guards CSP equivalence;
 *   - logical: the deterministic logical-schedule analysis (makespan,
 *     gate-wait ticks) of the pinned workload — a *stable* perf
 *     model that must be byte-identical run over run;
 *   - recovery: a threaded run that loses a stage worker to an
 *     injected crash, recovers in place from the last drained
 *     checkpoint, and must land bitwise on the fault-free weights —
 *     the committed record of what a failure costs (replayed
 *     subnets, modeled downtime) and that it costs no correctness;
 *   - serve: the multi-tenant search service multiplexing mixed
 *     NLP.c1/CV.c1 jobs over one shared pool — aggregate throughput
 *     plus the per-job bitwise gate (every tenant's weights must
 *     equal its solo run exactly);
 *   - numeric: the kernel layer's record — sequential-vs-tree
 *     reduction timings at several lengths, and the per-precision
 *     golden gate: a pinned 32-step workload per (space, mode) on
 *     BOTH executors, whose weight hashes must agree with each
 *     other and with the committed goldens bit for bit.
 *
 * Wall-clock numbers vary machine to machine; the stable section and
 * every hash/match field must not. CI runs `--smoke` on every push.
 *
 * Usage:
 *   naspipe_bench [--out FILE] [--pr N] [--steps N] [--smoke]
 *                 [--quiet]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "exec/parallel_runtime.h"
#include "obs/logical_schedule.h"
#include "obs/metrics_registry.h"
#include "obs/wall_clock.h"
#include "serve/service.h"
#include "supernet/sampler.h"
#include "tensor/kernels/precision.h"
#include "tensor/kernels/reduce.h"
#include "train/numeric_executor.h"

namespace {

using namespace naspipe;

constexpr const char *kSchema = "naspipe-bench/4";

struct Options {
    std::string outPath = "BENCH_10.json";
    int pr = 10;
    int steps = 64;
    bool smoke = false;
    bool quiet = false;
};

struct MicroResult {
    std::string name;
    std::uint64_t iterations = 0;
    double usPerIter = 0.0;
};

struct ScalingResult {
    int workers = 0;
    double simSeconds = 0.0;     ///< simulator wall time
    double threadSeconds = 0.0;  ///< threaded-executor wall time
    double subnetsPerSec = 0.0;  ///< threaded throughput
    std::uint64_t simHash = 0;
    std::uint64_t threadHash = 0;
    bool bitwiseMatch = false;
};

struct ServeJobResult {
    int id = 0;
    std::string space;
    std::uint64_t seed = 0;
    int steps = 0;
    std::uint64_t hash = 0;
    bool bitwiseMatch = false;  ///< shared-pool hash == solo hash
};

struct ServeResult {
    int stages = 0;
    double wallSeconds = 0.0;
    double subnetsPerSec = 0.0;  ///< aggregate across all tenants
    std::vector<ServeJobResult> jobs;
};

struct ReductionResult {
    std::size_t n = 0;
    double seqUs = 0.0;
    double treeUs = 0.0;
    double speedup = 0.0;  ///< seq / tree
};

struct GoldenResult {
    std::string space;
    std::string mode;  ///< "fp32" | "fp16_rne"
    int workers = 0;
    int steps = 0;
    std::uint64_t hash = 0;        ///< threaded-executor hash
    bool simThreadsMatch = false;  ///< sim == threads bitwise
    bool goldenMatch = false;      ///< == the committed golden
};

struct NumericResult {
    std::vector<ReductionResult> reductions;
    std::vector<GoldenResult> goldens;
};

struct RecoveryResult {
    int workers = 0;
    int ckptInterval = 0;
    int crashStep = 0;
    int recoveries = 0;
    int replayed = 0;              ///< subnets redone after rollback
    double recoverySeconds = 0.0;  ///< modeled detect+restart time
    double wallOverheadSeconds = 0.0;  ///< crash wall - clean wall
    bool bitwiseMatch = false;     ///< recovered == fault-free hash
};

double
microLoop(std::uint64_t iterations, const std::function<void()> &body)
{
    obs::WallTimer timer;
    for (std::uint64_t i = 0; i < iterations; i++)
        body();
    return timer.seconds() * 1e6 / static_cast<double>(iterations);
}

std::vector<MicroResult>
runMicro(const Options &opt)
{
    std::vector<MicroResult> out;
    auto bench = [&](const char *name, std::uint64_t iters,
                     const std::function<void()> &body) {
        MicroResult r;
        r.name = name;
        r.iterations = iters;
        r.usPerIter = microLoop(iters, body);
        out.push_back(r);
        if (!opt.quiet) {
            std::printf("micro  %-24s %10.3f us/iter (%llu iters)\n",
                        name, r.usPerIter,
                        static_cast<unsigned long long>(iters));
        }
    };
    const std::uint64_t scale = opt.smoke ? 1 : 8;

    {
        LayerParams params;
        initLayerParams(params, 3, 0, 0);
        Tensor in(kLayerDim), outT(kLayerDim);
        in.fill(0.25f);
        bench("layer_forward", 2000 * scale,
              [&] { layerForward(params, in, outT); });
        Tensor gradOut(kLayerDim), gradIn(kLayerDim);
        gradOut.fill(0.1f);
        LayerGrads grads;
        bench("layer_backward", 2000 * scale, [&] {
            grads.clear();
            layerBackward(params, in, gradOut, gradIn, grads);
        });
    }
    {
        SearchSpace space("bench", SpaceFamily::Nlp, 48, 72, 7, 0.37);
        ParameterStore store(space, 7);
        NumericExecutor::Config config;
        config.batch = 160;
        NumericExecutor exec(store, config);
        UniformSampler sampler(space, 13);
        bench("train_sequential_subnet", 4 * scale, [&] {
            Subnet sn = sampler.next();
            exec.trainSequential(sn);
        });
    }
    {
        SearchSpace space("bench", SpaceFamily::Nlp, 48, 24, 7, 0.37);
        ParameterStore store(space, 7);
        store.supernetHash();  // materialize all layers once
        bench("supernet_hash", 8 * scale,
              [&] { store.supernetHash(); });
        bench("checkpoint_save", 4 * scale, [&] {
            std::stringstream buffer;
            store.save(buffer);
        });
    }
    return out;
}

RuntimeConfig
workloadConfig(int workers, int steps)
{
    RuntimeConfig config;
    config.system = naspipeSystem();
    config.numStages = workers;
    config.totalSubnets = steps;
    config.seed = 7;
    return config;
}

/**
 * The kernel-layer record. Timings compare the pre-refactor
 * sequential loop against kernels::treeSum at several lengths; the
 * golden gate reruns the pinned 32-step acceptance workload per
 * (space, precision mode) on both executors and compares against the
 * committed hashes below. Goldens are pinned to 4 workers, 32 steps,
 * seed 7 — independent of --steps/--smoke, so the gate is identical
 * in every harness configuration.
 */
struct GoldenSpec {
    const char *space;
    kernels::PrecisionMode mode;
    std::uint64_t hash;
};
constexpr int kGoldenWorkers = 4;
constexpr int kGoldenSteps = 32;
constexpr GoldenSpec kGoldens[] = {
    {"NLP.c1", kernels::PrecisionMode::Fp32, 0x62a61404a040bcdaULL},
    {"CV.c1", kernels::PrecisionMode::Fp32, 0x11818c7988908918ULL},
    {"NLP.c1", kernels::PrecisionMode::Fp16Rne,
     0xcc5b8116dc75ad43ULL},
    {"CV.c1", kernels::PrecisionMode::Fp16Rne,
     0x7df4511c1a20f704ULL},
};

NumericResult
runNumeric(const Options &opt)
{
    NumericResult out;

    const std::uint64_t reps = opt.smoke ? 200 : 2000;
    for (std::size_t n : {1024u, 4096u, 16384u, 65536u}) {
        std::vector<float> a(n);
        for (std::size_t i = 0; i < n; i++)
            a[i] = 0.001f * static_cast<float>(i % 97) - 0.05f;
        ReductionResult r;
        r.n = n;
        volatile float sink = 0.0f;
        r.seqUs = microLoop(reps, [&] {
            float acc = 0.0f;
            for (std::size_t i = 0; i < n; i++)
                // naspipe-lint: allow(float-reduce-outside-kernels) the sequential baseline the tree is measured against
                acc += a[i];
            sink = acc;
        });
        r.treeUs = microLoop(
            reps, [&] { sink = kernels::treeSum(a.data(), n); });
        r.speedup = r.treeUs > 0.0 ? r.seqUs / r.treeUs : 0.0;
        out.reductions.push_back(r);
        if (!opt.quiet) {
            std::printf("numer  reduce n=%-6zu seq %8.3f us  tree "
                        "%8.3f us  speedup %.2fx\n",
                        n, r.seqUs, r.treeUs, r.speedup);
        }
    }

    for (const GoldenSpec &spec : kGoldens) {
        SearchSpace space = makeSpaceByName(spec.space);
        RuntimeConfig config =
            workloadConfig(kGoldenWorkers, kGoldenSteps);
        config.precision = spec.mode;
        RunResult sim = runTraining(space, config);
        RunResult thr = runTrainingThreaded(space, config);
        NASPIPE_ASSERT(!sim.oom && !sim.failed && !thr.oom &&
                           !thr.failed,
                       "bench numeric golden run failed (", spec.space,
                       ", ", kernels::precisionModeName(spec.mode),
                       ")");
        GoldenResult r;
        r.space = spec.space;
        r.mode = kernels::precisionModeName(spec.mode);
        r.workers = kGoldenWorkers;
        r.steps = kGoldenSteps;
        r.hash = thr.supernetHash;
        r.simThreadsMatch = sim.supernetHash == thr.supernetHash;
        r.goldenMatch = thr.supernetHash == spec.hash;
        out.goldens.push_back(r);
        if (!opt.quiet) {
            std::printf("numer  golden %s %-8s: sim==threads %s, "
                        "golden %s\n",
                        r.space.c_str(), r.mode.c_str(),
                        r.simThreadsMatch ? "ok" : "MISMATCH",
                        r.goldenMatch ? "ok" : "MISMATCH");
        }
    }
    return out;
}

std::vector<ScalingResult>
runScaling(const SearchSpace &space, const Options &opt)
{
    std::vector<ScalingResult> out;
    for (int workers : {1, 2, 4}) {
        RuntimeConfig config = workloadConfig(workers, opt.steps);

        obs::WallTimer simTimer;
        RunResult sim = runTraining(space, config);
        double simSec = simTimer.seconds();
        NASPIPE_ASSERT(!sim.oom && !sim.failed,
                       "bench sim run failed at ", workers,
                       " workers");

        RunResult thr = runTrainingThreaded(space, config);
        NASPIPE_ASSERT(!thr.oom && !thr.failed,
                       "bench threaded run failed at ", workers,
                       " workers");

        ScalingResult r;
        r.workers = workers;
        r.simSeconds = simSec;
        r.threadSeconds = thr.metrics.wallSeconds;
        r.subnetsPerSec =
            r.threadSeconds > 0.0
                ? static_cast<double>(opt.steps) / r.threadSeconds
                : 0.0;
        r.simHash = sim.supernetHash;
        r.threadHash = thr.supernetHash;
        r.bitwiseMatch = sim.supernetHash == thr.supernetHash;
        out.push_back(r);
        if (!opt.quiet) {
            std::printf("scale  %d workers: threads %.3fs "
                        "(%.1f subnets/s)  bitwise %s\n",
                        workers, r.threadSeconds, r.subnetsPerSec,
                        r.bitwiseMatch ? "ok" : "MISMATCH");
        }
    }
    return out;
}

/**
 * Crash a stage worker at 3/4 of the run on the threaded executor
 * and measure what the supervised recovery costs relative to the
 * fault-free `reference` run (same workload, same worker count).
 */
RecoveryResult
runRecovery(const SearchSpace &space, const Options &opt,
            const RunResult &reference)
{
    RecoveryResult r;
    r.workers = 4;
    r.ckptInterval = std::max(2, opt.steps / 4);
    r.crashStep = 3 * opt.steps / 4;

    RuntimeConfig config = workloadConfig(r.workers, opt.steps);
    config.ckptInterval = r.ckptInterval;
    FaultSpec crash;
    crash.kind = FaultKind::GpuCrash;
    crash.atStep = r.crashStep;
    crash.stage = 2;
    config.faults = {crash};

    RunResult run = runTrainingThreaded(space, config);
    NASPIPE_ASSERT(!run.oom && !run.failed,
                   "bench recovery run failed: ", run.error);
    r.recoveries = run.metrics.recoveries;
    r.replayed = run.metrics.subnetsReplayed;
    r.recoverySeconds = run.metrics.recoverySeconds;
    r.wallOverheadSeconds = std::max(
        0.0,
        run.metrics.wallSeconds - reference.metrics.wallSeconds);
    r.bitwiseMatch = run.supernetHash == reference.supernetHash;
    if (!opt.quiet) {
        std::printf("fault  crash@%d: %d recoveries, %d replayed, "
                    "%.2fs modeled downtime, bitwise %s\n",
                    r.crashStep, r.recoveries, r.replayed,
                    r.recoverySeconds,
                    r.bitwiseMatch ? "ok" : "MISMATCH");
    }
    return r;
}

/**
 * Multiplex three mixed-space searches over one shared pool and gate
 * every tenant's weights against its solo run — the committed record
 * of multi-tenant throughput and of the per-job bitwise guarantee.
 */
ServeResult
runServe(const Options &opt)
{
    ServeResult out;
    out.stages = 2;
    const int steps = std::max(4, opt.steps / 4);
    struct Tenant {
        const char *space;
        std::uint64_t seed;
    };
    const Tenant tenants[] = {
        {"NLP.c1", 11}, {"CV.c1", 3}, {"NLP.c1", 5}};

    serve::ServiceConfig sc;
    sc.numStages = out.stages;
    serve::SearchService service(sc);
    std::vector<int> ids;
    for (const Tenant &t : tenants) {
        serve::JobSpec spec;
        spec.space = t.space;
        spec.seed = t.seed;
        spec.steps = steps;
        std::string why;
        int id = service.submit(spec, &why);
        NASPIPE_ASSERT(id > 0, "bench serve submit failed: ", why);
        ids.push_back(id);
    }
    service.drain();
    obs::WallTimer timer;
    int outcome = service.run();
    out.wallSeconds = timer.seconds();
    NASPIPE_ASSERT(outcome == serve::SearchService::AllDone,
                   "bench serve run failed: ",
                   service.serviceError());
    out.subnetsPerSec =
        out.wallSeconds > 0.0
            ? static_cast<double>(steps) *
                  static_cast<double>(ids.size()) / out.wallSeconds
            : 0.0;

    for (std::size_t i = 0; i < ids.size(); i++) {
        const serve::ServeJob *job = service.job(ids[i]);
        NASPIPE_ASSERT(job, "bench serve job missing");
        SearchSpace space = makeSpaceByName(tenants[i].space);
        RuntimeConfig solo = workloadConfig(out.stages, steps);
        solo.seed = tenants[i].seed;
        RunResult ref = runTrainingThreaded(space, solo);
        NASPIPE_ASSERT(!ref.oom && !ref.failed,
                       "bench serve solo run failed");
        ServeJobResult r;
        r.id = ids[i];
        r.space = tenants[i].space;
        r.seed = tenants[i].seed;
        r.steps = steps;
        r.hash = job->supernetHash();
        r.bitwiseMatch = job->supernetHash() == ref.supernetHash;
        out.jobs.push_back(r);
        if (!opt.quiet) {
            std::printf("serve  job %d (%s seed %llu): bitwise %s\n",
                        r.id, r.space.c_str(),
                        static_cast<unsigned long long>(r.seed),
                        r.bitwiseMatch ? "ok" : "MISMATCH");
        }
    }
    if (!opt.quiet) {
        std::printf("serve  %zu jobs on %d stages: %.3fs "
                    "(%.1f subnets/s aggregate)\n",
                    out.jobs.size(), out.stages, out.wallSeconds,
                    out.subnetsPerSec);
    }
    return out;
}

std::string
renderJson(const Options &opt, const std::vector<MicroResult> &micro,
           const std::vector<ScalingResult> &scaling,
           const RecoveryResult &recovery, const ServeResult &serve,
           const NumericResult &numeric, const RunResult &reference,
           const obs::LogicalSchedule &logical)
{
    std::ostringstream oss;
    oss << "{\"schema\":\"" << kSchema << "\"";
    oss << ",\"pr\":" << opt.pr;
    oss << ",\"config\":{\"space\":\"NLP.c1\",\"seed\":7"
        << ",\"steps\":" << opt.steps
        << ",\"smoke\":" << (opt.smoke ? "true" : "false")
        // Committed numbers must come from witness-off builds; the
        // flag makes an accidental witness-on run visible in review.
        << ",\"lock_witness\":"
        << (lockWitnessEnabled() ? "true" : "false") << "}";

    oss << ",\"micro\":{";
    for (std::size_t i = 0; i < micro.size(); i++) {
        if (i)
            oss << ",";
        oss << "\"" << obs::jsonEscape(micro[i].name)
            << "\":{\"us_per_iter\":"
            << formatFixed(micro[i].usPerIter, 3)
            << ",\"iterations\":" << micro[i].iterations << "}";
    }
    oss << "}";

    oss << ",\"scaling\":[";
    for (std::size_t i = 0; i < scaling.size(); i++) {
        const ScalingResult &r = scaling[i];
        if (i)
            oss << ",";
        oss << "{\"workers\":" << r.workers
            << ",\"sim_s\":" << formatFixed(r.simSeconds, 4)
            << ",\"threads_s\":" << formatFixed(r.threadSeconds, 4)
            << ",\"subnets_per_s\":"
            << formatFixed(r.subnetsPerSec, 1)
            << ",\"bitwise_match\":"
            << (r.bitwiseMatch ? "true" : "false") << "}";
    }
    oss << "]";

    oss << ",\"recovery\":{\"workers\":" << recovery.workers
        << ",\"ckpt_interval\":" << recovery.ckptInterval
        << ",\"crash_step\":" << recovery.crashStep
        << ",\"recoveries\":" << recovery.recoveries
        << ",\"replayed\":" << recovery.replayed
        << ",\"recovery_s\":"
        << formatFixed(recovery.recoverySeconds, 3)
        << ",\"wall_overhead_s\":"
        << formatFixed(recovery.wallOverheadSeconds, 4)
        << ",\"bitwise_match\":"
        << (recovery.bitwiseMatch ? "true" : "false") << "}";

    oss << ",\"serve\":{\"stages\":" << serve.stages
        << ",\"jobs\":" << serve.jobs.size()
        << ",\"wall_s\":" << formatFixed(serve.wallSeconds, 4)
        << ",\"subnets_per_s\":"
        << formatFixed(serve.subnetsPerSec, 1) << ",\"per_job\":[";
    for (std::size_t i = 0; i < serve.jobs.size(); i++) {
        const ServeJobResult &r = serve.jobs[i];
        if (i)
            oss << ",";
        char jobHash[32];
        std::snprintf(jobHash, sizeof(jobHash), "%016llx",
                      static_cast<unsigned long long>(r.hash));
        oss << "{\"job\":" << r.id << ",\"space\":\""
            << obs::jsonEscape(r.space) << "\",\"seed\":" << r.seed
            << ",\"steps\":" << r.steps << ",\"hash\":\"" << jobHash
            << "\",\"bitwise_match\":"
            << (r.bitwiseMatch ? "true" : "false") << "}";
    }
    oss << "]}";

    oss << ",\"numeric\":{\"reductions\":[";
    for (std::size_t i = 0; i < numeric.reductions.size(); i++) {
        const ReductionResult &r = numeric.reductions[i];
        if (i)
            oss << ",";
        oss << "{\"n\":" << r.n
            << ",\"seq_us\":" << formatFixed(r.seqUs, 3)
            << ",\"tree_us\":" << formatFixed(r.treeUs, 3)
            << ",\"speedup\":" << formatFixed(r.speedup, 2) << "}";
    }
    oss << "],\"goldens\":[";
    for (std::size_t i = 0; i < numeric.goldens.size(); i++) {
        const GoldenResult &r = numeric.goldens[i];
        if (i)
            oss << ",";
        char goldenHash[32];
        std::snprintf(goldenHash, sizeof(goldenHash), "%016llx",
                      static_cast<unsigned long long>(r.hash));
        oss << "{\"space\":\"" << obs::jsonEscape(r.space)
            << "\",\"mode\":\"" << obs::jsonEscape(r.mode)
            << "\",\"workers\":" << r.workers
            << ",\"steps\":" << r.steps << ",\"hash\":\""
            << goldenHash << "\",\"sim_threads_match\":"
            << (r.simThreadsMatch ? "true" : "false")
            << ",\"golden_match\":"
            << (r.goldenMatch ? "true" : "false") << "}";
    }
    oss << "]}";

    // The stable section: pure functions of (seed, schedule). Two
    // harness runs on any machines must agree on every byte here.
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(
                      reference.supernetHash));
    oss << ",\"stable\":{\"supernet_hash\":\"" << hash << "\""
        << ",\"final_loss\":"
        << formatFixed(reference.metrics.finalLoss, 6)
        << ",\"gate_commits\":" << reference.metrics.gateCommits
        << ",\"logical_makespan_ticks\":" << logical.makespan
        << ",\"logical_gate_wait_ticks\":"
        << logical.totalGateWaitTicks
        << ",\"logical_span_count\":" << logical.spans.size()
        << "}}";
    return oss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--out")
            opt.outPath = value();
        else if (arg == "--pr")
            opt.pr = std::atoi(value());
        else if (arg == "--steps")
            opt.steps = std::atoi(value());
        else if (arg == "--smoke")
            opt.smoke = true;
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--out FILE] [--pr N] [--steps N] "
                        "[--smoke] [--quiet]\n",
                        argv[0]);
            return 0;
        } else {
            fatal("unknown argument: ", arg);
        }
    }
    if (opt.smoke)
        opt.steps = std::min(opt.steps, 16);
    NASPIPE_ASSERT(opt.steps >= 1, "need >= 1 step");

    std::vector<MicroResult> micro = runMicro(opt);

    SearchSpace space = makeSpaceByName("NLP.c1");
    std::vector<ScalingResult> scaling = runScaling(space, opt);

    // Reference run for the stable section: 4 workers, the same
    // pinned workload the acceptance tests use.
    RuntimeConfig refConfig = workloadConfig(4, opt.steps);
    RunResult reference = runTrainingThreaded(space, refConfig);
    NASPIPE_ASSERT(!reference.oom && !reference.failed,
                   "bench reference run failed");
    obs::LogicalSchedule logical = obs::buildLogicalSchedule(
        space, reference.sampled, reference.partitions, 4,
        reference.metrics.batch,
        refConfig.system.effectiveInflight(4));

    RecoveryResult recovery = runRecovery(space, opt, reference);
    ServeResult serve = runServe(opt);
    NumericResult numeric = runNumeric(opt);

    std::string json = renderJson(opt, micro, scaling, recovery,
                                  serve, numeric, reference, logical);
    std::ofstream out(opt.outPath);
    out << json << "\n";
    if (!out)
        fatal("cannot write ", opt.outPath);
    if (!opt.quiet)
        std::printf("wrote  %s (%s)\n", opt.outPath.c_str(), kSchema);

    for (const ScalingResult &r : scaling) {
        if (!r.bitwiseMatch) {
            std::fprintf(stderr,
                         "error: sim/threads weight hash mismatch at "
                         "%d workers\n",
                         r.workers);
            return 1;
        }
    }
    if (!recovery.bitwiseMatch) {
        std::fprintf(stderr,
                     "error: crash-recovered weights diverge from "
                     "the fault-free run\n");
        return 1;
    }
    for (const ServeJobResult &r : serve.jobs) {
        if (!r.bitwiseMatch) {
            std::fprintf(stderr,
                         "error: serve job %d (%s) diverges from its "
                         "solo run on the shared pool\n",
                         r.id, r.space.c_str());
            return 1;
        }
    }
    for (const GoldenResult &r : numeric.goldens) {
        if (!r.simThreadsMatch || !r.goldenMatch) {
            std::fprintf(stderr,
                         "error: numeric golden gate failed for %s "
                         "in %s mode\n",
                         r.space.c_str(), r.mode.c_str());
            return 1;
        }
    }
    return 0;
}
