/**
 * @file
 * naspipe_cli — run one supernet-training simulation from the
 * command line.
 *
 * Usage:
 *   naspipe_cli [--space NAME] [--system NAME] [--gpus N]
 *               [--steps N] [--seed N] [--batch N] [--staleness N]
 *               [--evolution] [--hybrid N]
 *               [--trace FILE.json] [--checkpoint FILE.ckpt]
 *               [--csv FILE.csv] [--quiet]
 *
 * Spaces: NLP.c0..c3, CV.c1..c3 (Table 1).
 * Systems: naspipe, gpipe, pipedream, vpipe, naspipe-no-scheduler,
 *          naspipe-no-predictor, naspipe-no-mirroring, ssp
 *          (ssp uses --staleness, default 2).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "schedule/ssp_scheduler.h"

namespace {

using namespace naspipe;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--space NAME] [--system NAME] [--gpus N]\n"
        "          [--steps N] [--seed N] [--batch N] "
        "[--staleness N]\n"
        "          [--evolution] [--hybrid N] [--trace FILE.json]\n"
        "          [--checkpoint FILE.ckpt] [--csv FILE.csv] "
        "[--quiet]\n"
        "spaces:  NLP.c0 NLP.c1 NLP.c2 NLP.c3 CV.c1 CV.c2 CV.c3\n"
        "systems: naspipe gpipe pipedream vpipe ssp\n"
        "         naspipe-no-scheduler naspipe-no-predictor\n"
        "         naspipe-no-mirroring\n",
        argv0);
}

SystemModel
systemByName(const std::string &name, int staleness)
{
    if (name == "naspipe")
        return naspipeSystem();
    if (name == "gpipe")
        return gpipeSystem();
    if (name == "pipedream")
        return pipedreamSystem();
    if (name == "vpipe")
        return vpipeSystem();
    if (name == "ssp")
        return sspSystem(staleness);
    if (name == "naspipe-no-scheduler")
        return naspipeWithoutScheduler();
    if (name == "naspipe-no-predictor")
        return naspipeWithoutPredictor();
    if (name == "naspipe-no-mirroring")
        return naspipeWithoutMirroring();
    fatal("unknown system: ", name);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace naspipe;

    std::string spaceName = "NLP.c2";
    std::string systemName = "naspipe";
    std::string tracePath, checkpointPath, csvPath;
    int gpus = 8, steps = 64, batch = 0, staleness = 2;
    int hybrid = 0;
    std::uint64_t seed = 7;
    bool evolution = false, quiet = false;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--space")
            spaceName = value();
        else if (arg == "--system")
            systemName = value();
        else if (arg == "--gpus")
            gpus = std::atoi(value());
        else if (arg == "--steps")
            steps = std::atoi(value());
        else if (arg == "--seed")
            seed = std::strtoull(value(), nullptr, 10);
        else if (arg == "--batch")
            batch = std::atoi(value());
        else if (arg == "--staleness")
            staleness = std::atoi(value());
        else if (arg == "--hybrid")
            hybrid = std::atoi(value());
        else if (arg == "--trace")
            tracePath = value();
        else if (arg == "--checkpoint")
            checkpointPath = value();
        else if (arg == "--csv")
            csvPath = value();
        else if (arg == "--evolution")
            evolution = true;
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown argument: ", arg);
        }
    }

    SearchSpace space = makeSpaceByName(spaceName);
    SystemModel system = systemByName(systemName, staleness);

    RuntimeConfig config;
    config.system = system;
    config.numStages = gpus;
    config.totalSubnets = steps;
    config.seed = seed;
    config.batch = batch;
    config.evolutionSearch = evolution;
    config.hybridStreams = hybrid;
    config.traceEnabled = !tracePath.empty();

    RunResult result = runTraining(space, config);
    if (result.oom) {
        std::printf("%s on %s with %d GPUs: OOM (does not fit)\n",
                    system.name.c_str(), spaceName.c_str(), gpus);
        return 2;
    }

    if (!quiet) {
        const RunMetrics &m = result.metrics;
        std::printf("space       %s (%s sync, %d GPUs, seed %llu)\n",
                    spaceName.c_str(), system.syncName(), gpus,
                    static_cast<unsigned long long>(seed));
        std::printf("throughput  %.1f samples/s  (%.0f subnets/h, "
                    "batch %d)\n",
                    m.samplesPerSec, m.subnetsPerHour, m.batch);
        std::printf("pipeline    bubble %.2f  exec %.2fs  ALU %s\n",
                    m.bubbleRatio, m.meanExecSeconds,
                    formatFactor(m.totalAluUtilization, 1).c_str());
        std::printf("memory      GPU %s  CPU %s  cache %s\n",
                    formatFactor(m.gpuMemFactor, 1).c_str(),
                    m.cpuMemBytes ? formatBytes(m.cpuMemBytes).c_str()
                                  : "0",
                    m.cacheHitRate < 0
                        ? "N/A"
                        : formatPercent(m.cacheHitRate).c_str());
        std::printf("training    loss %.6f  score %.2f  best SN%lld\n",
                    m.finalLoss, m.finalScore,
                    static_cast<long long>(result.bestSubnet));
        std::printf("causality   %d violated layers  weights %016llx\n",
                    m.causalViolations,
                    static_cast<unsigned long long>(
                        result.supernetHash));
    }

    if (!tracePath.empty()) {
        std::ofstream out(tracePath);
        out << result.trace->exportChromeJson();
        if (!quiet)
            std::printf("trace       %s (chrome://tracing)\n",
                        tracePath.c_str());
    }
    if (!checkpointPath.empty()) {
        if (!result.store->saveFile(checkpointPath))
            fatal("cannot write checkpoint ", checkpointPath);
        if (!quiet)
            std::printf("checkpoint  %s\n", checkpointPath.c_str());
    }
    if (!csvPath.empty()) {
        CsvWriter csv({"time_s", "loss", "score"});
        for (const auto &p : result.curve) {
            csv.addRow({formatFixed(p.timeSec, 3),
                        formatFixed(p.loss, 6),
                        formatFixed(p.score, 4)});
        }
        if (!csv.writeFile(csvPath))
            fatal("cannot write csv ", csvPath);
        if (!quiet)
            std::printf("curve       %s\n", csvPath.c_str());
    }
    return 0;
}
