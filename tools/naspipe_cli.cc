/**
 * @file
 * naspipe_cli — run one supernet-training simulation from the
 * command line.
 *
 * Usage:
 *   naspipe_cli [--space NAME] [--system NAME] [--gpus N]
 *               [--steps N] [--seed N] [--batch N] [--staleness N]
 *               [--evolution] [--hybrid N] [--executor sim|threads]
 *               [--verify-csp] [--inject-fault SPEC]
 *               [--ckpt-interval N] [--ckpt FILE.ckpt]
 *               [--resume FILE.ckpt] [--trace FILE.json]
 *               [--trace-out FILE.json] [--metrics-out FILE.json]
 *               [--obs-wall] [--checkpoint FILE.ckpt]
 *               [--csv FILE.csv] [--quiet]
 *
 * --executor threads runs the training on real OS threads (one per
 * stage) through the CommitGate; weights are bitwise identical to
 * --executor sim (the default discrete-event simulation).
 *
 * --trace-out writes a Perfetto-loadable span trace and
 * --metrics-out the unified metrics registry (src/obs/). Both
 * default to *logical* mode: every structural field is a pure
 * function of (seed, schedule), so identical-seed runs emit
 * byte-identical files with either executor. --obs-wall switches
 * both to real wall-clock spans and Timing metrics instead
 * (threaded runs only record wall spans; unreproducible by nature).
 *
 * --verify-csp runs the CspOracle over the run: the full access log
 * is audited post-run (both executors), and with --executor threads
 * the oracle additionally observes every CommitGate commit live.
 * Violations print a report naming layer, stage and the offending
 * sequence IDs, and the process exits 4.
 *
 * --inject-fault works with both executors: the simulator transitions
 * its hardware models, the threaded executor latches the fault into
 * the victim stage worker (a crashed worker abandons its inbox; the
 * heartbeat watchdog detects it and the run rolls back to the last
 * drained checkpoint, respawns the stage and replays in CSP order to
 * bitwise-identical weights). Recovery retries are bounded
 * (--recovery-retries, default 3 consecutive) with modeled
 * exponential backoff; exhaustion exits 5.
 *
 * Exit codes: 0 ok, 2 bad arguments or OOM, 3 run failure (bad
 * resume file etc.), 4 CSP invariant violated, 5 recovery retries
 * exhausted.
 *
 * Spaces: NLP.c0..c3, CV.c1..c3 (Table 1).
 * Systems: naspipe, gpipe, pipedream, vpipe, naspipe-no-scheduler,
 *          naspipe-no-predictor, naspipe-no-mirroring, ssp
 *          (ssp uses --staleness, default 2).
 * Fault specs: KIND@STEP[,stage=N][,ms=X][,factor=F] with KIND one
 * of crash|stall|degrade|drop; --inject-fault repeats.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/engine.h"
#include "exec/parallel_runtime.h"
#include "obs/logical_schedule.h"
#include "obs/metrics_export.h"
#include "obs/trace_export.h"
#include "fault/fault_plan.h"
#include "schedule/ssp_scheduler.h"
#include "tensor/kernels/precision.h"
#include "verify/csp_oracle.h"

namespace {

using namespace naspipe;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--space NAME] [--system NAME] [--gpus N]\n"
        "          [--steps N] [--seed N] [--batch N] "
        "[--staleness N]\n"
        "          [--evolution] [--hybrid N] "
        "[--executor sim|threads]\n"
        "          [--precision fp32|fp16]\n"
        "          [--verify-csp] [--inject-fault SPEC] "
        "[--ckpt-interval N]\n"
        "          [--recovery-retries N] "
        "[--watchdog-interval-ms N]\n"
        "          [--ckpt FILE.ckpt] [--resume FILE.ckpt]\n"
        "          [--trace FILE.json] [--trace-out FILE.json]\n"
        "          [--metrics-out FILE.json] [--obs-wall]\n"
        "          [--checkpoint FILE.ckpt]\n"
        "          [--csv FILE.csv] [--quiet]\n"
        "spaces:  NLP.c0 NLP.c1 NLP.c2 NLP.c3 CV.c1 CV.c2 CV.c3\n"
        "systems: naspipe gpipe pipedream vpipe ssp\n"
        "         naspipe-no-scheduler naspipe-no-predictor\n"
        "         naspipe-no-mirroring\n"
        "faults:  KIND@STEP[,stage=N][,ms=X][,factor=F]\n"
        "         KIND: crash|stall|degrade|drop; repeatable\n"
        "exit:    0 ok, 2 bad args/OOM, 3 run failure,\n"
        "         4 CSP violation, 5 recovery retries exhausted\n",
        argv0);
}

/** Report a bad argument, print usage, and exit nonzero. */
[[noreturn]] void
argError(const char *argv0, const std::string &message)
{
    std::fprintf(stderr, "error: %s\n", message.c_str());
    usage(argv0);
    std::exit(2);
}

/** Strict base-10 integer parse: the whole string or nothing. */
bool
parseWholeLong(const char *text, long &out)
{
    if (!text || *text == '\0')
        return false;
    char *end = nullptr;
    out = std::strtol(text, &end, 10);
    return end && *end == '\0';
}

bool
parseWholeU64(const char *text, std::uint64_t &out)
{
    if (!text || *text == '\0' || *text == '-')
        return false;
    char *end = nullptr;
    out = std::strtoull(text, &end, 10);
    return end && *end == '\0';
}

SystemModel
systemByName(const std::string &name, int staleness)
{
    if (name == "naspipe")
        return naspipeSystem();
    if (name == "gpipe")
        return gpipeSystem();
    if (name == "pipedream")
        return pipedreamSystem();
    if (name == "vpipe")
        return vpipeSystem();
    if (name == "ssp")
        return sspSystem(staleness);
    if (name == "naspipe-no-scheduler")
        return naspipeWithoutScheduler();
    if (name == "naspipe-no-predictor")
        return naspipeWithoutPredictor();
    if (name == "naspipe-no-mirroring")
        return naspipeWithoutMirroring();
    fatal("unknown system: ", name);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace naspipe;

    std::string spaceName = "NLP.c2";
    std::string systemName = "naspipe";
    std::string executorName = "sim";
    kernels::PrecisionMode precision = kernels::PrecisionMode::Fp32;
    std::string tracePath, checkpointPath, csvPath;
    std::string ckptPath, resumePath;
    std::string traceOutPath, metricsOutPath;
    std::vector<FaultSpec> faults;
    int gpus = 8, steps = 64, batch = 0, staleness = 2;
    int hybrid = 0, ckptInterval = 0, recoveryRetries = 3;
    int watchdogIntervalMs = 2;
    std::uint64_t seed = 7;
    bool evolution = false, quiet = false, verifyCsp = false;
    bool obsWall = false;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                argError(argv[0], "missing value for " + arg);
            return argv[++i];
        };
        auto intValue = [&](long lo, long hi) -> long {
            const char *text = value();
            long n = 0;
            if (!parseWholeLong(text, n) || n < lo || n > hi) {
                argError(argv[0], "bad value '" + std::string(text) +
                                      "' for " + arg + " (want " +
                                      std::to_string(lo) + ".." +
                                      std::to_string(hi) + ")");
            }
            return n;
        };
        if (arg == "--space")
            spaceName = value();
        else if (arg == "--system")
            systemName = value();
        else if (arg == "--gpus")
            gpus = static_cast<int>(intValue(1, 1024));
        else if (arg == "--steps")
            steps = static_cast<int>(intValue(1, 1000000));
        else if (arg == "--seed") {
            const char *text = value();
            if (!parseWholeU64(text, seed)) {
                argError(argv[0], "bad value '" + std::string(text) +
                                      "' for --seed");
            }
        } else if (arg == "--batch")
            batch = static_cast<int>(intValue(0, 1 << 20));
        else if (arg == "--staleness")
            staleness = static_cast<int>(intValue(0, 1 << 20));
        else if (arg == "--hybrid")
            hybrid = static_cast<int>(intValue(0, 1 << 20));
        else if (arg == "--executor") {
            executorName = value();
            if (executorName != "sim" && executorName != "threads") {
                argError(argv[0], "bad value '" + executorName +
                                      "' for --executor "
                                      "(want sim or threads)");
            }
        }
        else if (arg == "--precision") {
            const std::string text = value();
            if (!kernels::parsePrecisionMode(text, precision)) {
                argError(argv[0], "bad value '" + text +
                                      "' for --precision "
                                      "(want fp32 or fp16)");
            }
        }
        else if (arg == "--ckpt-interval")
            ckptInterval = static_cast<int>(intValue(0, 1000000));
        else if (arg == "--recovery-retries")
            recoveryRetries = static_cast<int>(intValue(0, 1000));
        else if (arg == "--watchdog-interval-ms")
            watchdogIntervalMs =
                static_cast<int>(intValue(1, 60000));
        else if (arg == "--inject-fault") {
            FaultSpec spec;
            std::string why;
            if (!parseFaultSpec(value(), spec, &why))
                argError(argv[0], why);
            faults.push_back(spec);
        } else if (arg == "--ckpt")
            ckptPath = value();
        else if (arg == "--resume")
            resumePath = value();
        else if (arg == "--trace")
            tracePath = value();
        else if (arg == "--trace-out")
            traceOutPath = value();
        else if (arg == "--metrics-out")
            metricsOutPath = value();
        else if (arg == "--obs-wall")
            obsWall = true;
        else if (arg == "--checkpoint")
            checkpointPath = value();
        else if (arg == "--csv")
            csvPath = value();
        else if (arg == "--evolution")
            evolution = true;
        else if (arg == "--verify-csp")
            verifyCsp = true;
        else if (arg == "--quiet")
            quiet = true;
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            argError(argv[0], "unknown argument: " + arg);
        }
    }
    if (!faults.empty() &&
        std::any_of(faults.begin(), faults.end(), [](const FaultSpec &f) {
            return faultIsFailStop(f.kind);
        }) &&
        ckptInterval == 0 && !quiet) {
        std::printf("note: fail-stop fault without --ckpt-interval: "
                    "recovery restarts from subnet 0\n");
    }

    SearchSpace space = makeSpaceByName(spaceName);
    SystemModel system = systemByName(systemName, staleness);

    RuntimeConfig config;
    config.system = system;
    config.numStages = gpus;
    config.totalSubnets = steps;
    config.seed = seed;
    config.batch = batch;
    config.precision = precision;
    config.evolutionSearch = evolution;
    config.hybridStreams = hybrid;
    // Wall-mode trace export needs live span recording; logical-mode
    // export rebuilds the timeline from the schedule instead, so the
    // run itself stays untouched by observability.
    config.traceEnabled =
        !tracePath.empty() || (obsWall && !traceOutPath.empty());
    config.faults = faults;
    config.ckptInterval = ckptInterval;
    config.ckptPath = ckptPath;
    config.resumePath = resumePath;
    config.recoveryMaxRetries = recoveryRetries;
    config.watchdogPollMs = watchdogIntervalMs;
    // Crash detection stays state-based (deterministic); the wall
    // hang deadline follows the wall-observability opt-in.
    config.wallWatchdog = obsWall;

    bool threaded = executorName == "threads";
    if (threaded) {
        std::string why;
        if (!ParallelRuntime::supported(config, &why))
            argError(argv[0], "--executor threads: " + why);
    }
    CspOracle oracle;
    if (verifyCsp && threaded) {
        // Live half of the audit: watch every CommitGate commit for
        // causal-chain monotonicity as it happens.
        config.commitObserver = [&oracle](std::uint64_t layerKey,
                                          SubnetId subnet,
                                          std::size_t rank, int stg) {
            oracle.observeCommit(layerKey, subnet, rank, stg);
        };
        // Recovery recreates the commit gate, so every causal chain
        // legitimately restarts at rank 0 — drop the live cursors at
        // each recovery epoch (the post-run audit still covers the
        // full replayed history).
        config.recoveryObserver = [&oracle](int) {
            oracle.resetLiveChains();
        };
    }
    RunResult result = threaded ? runTrainingThreaded(space, config)
                                : runTraining(space, config);
    if (result.oom) {
        std::printf("%s on %s with %d GPUs: OOM (does not fit)\n",
                    system.name.c_str(), spaceName.c_str(), gpus);
        return 2;
    }
    if (result.failed) {
        std::fprintf(stderr, "error: %s\n", result.error.c_str());
        return result.retriesExhausted ? 5 : 3;
    }

    bool cspOk = true;
    if (verifyCsp) {
        // Post-hoc half of the audit: replay the complete access log
        // through the per-layer freshness/ordering invariants.
        oracle.auditLog(result.store->accessLog());
        cspOk = oracle.ok();
        if (!cspOk)
            std::fprintf(stderr, "%s", oracle.report().c_str());
    }

    if (!quiet) {
        const RunMetrics &m = result.metrics;
        std::printf("space       %s (%s sync, %d %s, seed %llu)\n",
                    spaceName.c_str(), system.syncName(), gpus,
                    threaded ? "threads" : "GPUs",
                    static_cast<unsigned long long>(seed));
        if (threaded) {
            std::printf("executor    threads  wall %.2fs  gate wait "
                        "%.2fs  %llu commits\n",
                        m.wallSeconds, m.gateWaitSeconds,
                        static_cast<unsigned long long>(
                            m.gateCommits));
            // Per-stage accounting: the threaded counterpart of the
            // sim's stall taxonomy (busy / gate wait / idle).
            TextTable table({"stage", "busy s", "gate wait s",
                             "idle s", "fwd", "bwd", "deferrals"});
            for (std::size_t s = 0; s < m.perStageBusySec.size();
                 s++) {
                table.addRow(
                    {std::to_string(s),
                     formatFixed(m.perStageBusySec[s], 3),
                     formatFixed(m.perStageGateWaitSec[s], 3),
                     formatFixed(m.perStageIdleSec[s], 3),
                     std::to_string(m.perStageForwards[s]),
                     std::to_string(m.perStageBackwards[s]),
                     std::to_string(m.perStageDeferrals[s])});
            }
            std::printf("%s", table.render().c_str());
        }
        std::printf("throughput  %.1f samples/s  (%.0f subnets/h, "
                    "batch %d)\n",
                    m.samplesPerSec, m.subnetsPerHour, m.batch);
        std::printf("pipeline    bubble %.2f  exec %.2fs  ALU %s\n",
                    m.bubbleRatio, m.meanExecSeconds,
                    formatFactor(m.totalAluUtilization, 1).c_str());
        std::printf("memory      GPU %s  CPU %s  cache %s\n",
                    formatFactor(m.gpuMemFactor, 1).c_str(),
                    m.cpuMemBytes ? formatBytes(m.cpuMemBytes).c_str()
                                  : "0",
                    formatCacheHitRate(m.cacheHitRate).c_str());
        if (m.faultsInjected > 0 || m.recoveries > 0) {
            std::printf("faults      %d injected  %d recoveries  "
                        "%d subnets replayed\n",
                        m.faultsInjected, m.recoveries,
                        m.subnetsReplayed);
            std::printf("recovery    %.2fs downtime  %.2fs compute "
                        "lost\n",
                        m.recoverySeconds, m.lostComputeSeconds);
        }
        if (m.checkpointsWritten > 0) {
            std::printf("checkpoints %d written (%s each, %.3fs total "
                        "write time)\n",
                        m.checkpointsWritten,
                        formatBytes(m.checkpointBytes).c_str(),
                        m.checkpointSeconds);
        }
        std::printf("training    loss %.6f  score %.2f  best SN%lld\n",
                    m.finalLoss, m.finalScore,
                    static_cast<long long>(result.bestSubnet));
        std::printf("causality   %d violated layers  weights %016llx\n",
                    m.causalViolations,
                    static_cast<unsigned long long>(
                        result.supernetHash));
        if (verifyCsp) {
            std::printf("verify-csp  %s  (%zu layers, %llu records, "
                        "%llu live commits)\n",
                        cspOk ? "ok" : "VIOLATED",
                        oracle.auditedLayers(),
                        static_cast<unsigned long long>(
                            oracle.auditedRecords()),
                        static_cast<unsigned long long>(
                            oracle.observedCommits()));
        }
    }

    if (!tracePath.empty()) {
        std::ofstream out(tracePath);
        out << result.trace->exportChromeJson();
        if (!quiet)
            std::printf("trace       %s (chrome://tracing)\n",
                        tracePath.c_str());
    }
    if (!traceOutPath.empty() || !metricsOutPath.empty()) {
        // The deterministic observability exports. The logical
        // schedule is rebuilt from (sampled, partitions) — both pure
        // functions of the seed — never from run timing.
        obs::LogicalSchedule logical = obs::buildLogicalSchedule(
            space, result.sampled, result.partitions, gpus,
            result.metrics.batch,
            config.system.effectiveInflight(gpus));
        obs::TraceHeader header;
        header.space = spaceName;
        header.executor = executorName;
        header.mode = obsWall ? "wall" : "logical";
        header.seed = seed;
        header.steps = steps;
        header.numStages = gpus;
        if (!traceOutPath.empty()) {
            std::ofstream out(traceOutPath);
            out << obs::chromeTraceJson(obsWall
                                            ? result.trace->records()
                                            : logical.spans,
                                        header);
            if (!out)
                fatal("cannot write trace ", traceOutPath);
            if (!quiet)
                std::printf("trace-out   %s (%s mode, Perfetto)\n",
                            traceOutPath.c_str(),
                            header.mode.c_str());
        }
        if (!metricsOutPath.empty()) {
            obs::RunMetadata meta;
            meta.space = spaceName;
            meta.executor = executorName;
            meta.seed = seed;
            meta.steps = steps;
            meta.numStages = gpus;
            meta.batch = result.metrics.batch;
            meta.wallMode = obsWall;
            meta.deterministicTiming = !threaded;
            std::ofstream out(metricsOutPath);
            out << obs::metricsJson(result, &result.observations,
                                    &logical, meta);
            if (!out)
                fatal("cannot write metrics ", metricsOutPath);
            if (!quiet)
                std::printf("metrics-out %s (%s mode)\n",
                            metricsOutPath.c_str(),
                            header.mode.c_str());
        }
    }
    if (!checkpointPath.empty()) {
        if (!result.store->saveFile(checkpointPath))
            fatal("cannot write checkpoint ", checkpointPath);
        if (!quiet)
            std::printf("checkpoint  %s\n", checkpointPath.c_str());
    }
    if (!csvPath.empty()) {
        CsvWriter csv({"time_s", "loss", "score"});
        for (const auto &p : result.curve) {
            csv.addRow({formatFixed(p.timeSec, 3),
                        formatFixed(p.loss, 6),
                        formatFixed(p.score, 4)});
        }
        if (!csv.writeFile(csvPath))
            fatal("cannot write csv ", csvPath);
        if (!quiet)
            std::printf("curve       %s\n", csvPath.c_str());
    }
    return cspOk ? 0 : 4;
}
