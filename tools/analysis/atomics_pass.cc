#include "analysis/atomics_pass.h"

namespace naspipe {
namespace analysis {

namespace {

constexpr const char *kRelaxedMemoryOrder = "relaxed-memory-order";

} // namespace

const std::vector<RuleInfo> &
atomicsRuleTable()
{
    static const std::vector<RuleInfo> kTable = {
        {kRelaxedMemoryOrder,
         "std::memory_order_relaxed inside src/ — the reproducibility "
         "proof depends on acquire/release edges; every relaxed "
         "atomic needs an explicit reasoned allow() stating why its "
         "ordering cannot leak into committed state"},
    };
    return kTable;
}

std::vector<Finding>
runAtomicsPass(const SourceFile &file)
{
    std::vector<Finding> findings;
    if (!pathContains(file.path, "src/"))
        return findings;
    const SourceLines &lines = file.lines;
    for (std::size_t i = 0; i < lines.code.size(); i++) {
        if (lines.code[i].find("memory_order_relaxed") ==
            std::string::npos)
            continue;
        if (suppressed(lines, i, kRelaxedMemoryOrder))
            continue;
        Finding f;
        f.file = file.path;
        f.line = static_cast<int>(i) + 1;
        f.rule = kRelaxedMemoryOrder;
        f.excerpt = trim(lines.raw[i]);
        findings.push_back(std::move(f));
    }
    return findings;
}

} // namespace analysis
} // namespace naspipe
