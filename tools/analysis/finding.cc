#include "analysis/finding.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/source_model.h"

namespace naspipe {
namespace analysis {

std::string
Finding::describe() const
{
    std::ostringstream oss;
    oss << file << ":" << line << ": [" << rule << "] " << excerpt;
    if (baselined)
        oss << "  (baselined)";
    return oss.str();
}

std::string
baselineKey(const Finding &finding)
{
    return finding.rule + "|" + finding.file + "|" + finding.excerpt;
}

bool
loadBaseline(const std::string &path, std::set<std::string> &out,
             std::string *error)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::exists(path, ec))
        return true;  // no baseline: everything is a new finding
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open baseline " + path;
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        out.insert(line);
    }
    return true;
}

std::string
renderBaseline(const std::vector<Finding> &findings)
{
    std::set<std::string> keys;
    for (const Finding &f : findings)
        keys.insert(baselineKey(f));
    std::ostringstream oss;
    oss << "# naspipe_lint baseline — pre-existing findings only.\n"
        << "# Regenerate with: naspipe_lint --write-baseline FILE "
           "PATH...\n"
        << "# New findings must be fixed or carry a reasoned\n"
        << "# `naspipe-lint: allow(rule)` comment, never added "
           "here.\n";
    for (const std::string &key : keys)
        oss << key << "\n";
    return oss.str();
}

std::size_t
applyBaseline(std::vector<Finding> &findings,
              const std::set<std::string> &baseline)
{
    std::size_t fresh = 0;
    for (Finding &f : findings) {
        f.baselined = baseline.count(baselineKey(f)) != 0;
        if (!f.baselined)
            fresh++;
    }
    return fresh;
}

} // namespace analysis
} // namespace naspipe
