#include "analysis/source_model.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace naspipe {
namespace analysis {

SourceLines
splitAndStrip(const std::string &content)
{
    SourceLines out;
    enum class State {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Code;
    std::string raw, code;
    auto flush = [&] {
        out.raw.push_back(raw);
        out.code.push_back(code);
        raw.clear();
        code.clear();
    };
    for (std::size_t i = 0; i < content.size(); i++) {
        char c = content[i];
        char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '\n') {
            if (state == State::LineComment)
                state = State::Code;
            flush();
            continue;
        }
        raw += c;
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                code += ' ';
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                code += ' ';
            } else if (c == '"') {
                state = State::String;
                code += ' ';
            } else if (c == '\'') {
                state = State::Char;
                code += ' ';
            } else {
                code += c;
            }
            break;
          case State::LineComment:
            code += ' ';
            break;
          case State::BlockComment:
            code += ' ';
            if (c == '*' && next == '/') {
                raw += next;
                code += ' ';
                i++;
                state = State::Code;
            }
            break;
          case State::String:
          case State::Char: {
            code += ' ';
            if (c == '\\' && next != '\0' && next != '\n') {
                raw += next;
                code += ' ';
                i++;
            } else if ((state == State::String && c == '"') ||
                       (state == State::Char && c == '\'')) {
                state = State::Code;
            }
            break;
          }
        }
    }
    flush();
    return out;
}

SourceFile
makeSourceFile(const std::string &path, const std::string &content)
{
    SourceFile file;
    file.path = normalizePath(path);
    file.lines = splitAndStrip(content);
    return file;
}

bool
loadSourceFile(const std::string &path, SourceFile &out,
               std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = makeSourceFile(path, buffer.str());
    return true;
}

std::vector<std::string>
collectSources(const std::string &path)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    std::error_code ec;
    if (fs::is_regular_file(path, ec)) {
        out.push_back(normalizePath(path));
        return out;
    }
    for (fs::recursive_directory_iterator
             it(path, fs::directory_options::skip_permission_denied,
                ec),
         end;
         it != end; it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file(ec))
            continue;
        std::string ext = it->path().extension().string();
        if (ext == ".cc" || ext == ".h")
            out.push_back(normalizePath(it->path().string()));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
normalizePath(const std::string &path)
{
    std::string out = path;
    std::replace(out.begin(), out.end(), '\\', '/');
    return out;
}

bool
pathContains(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

std::string
trim(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    std::size_t last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

bool
wordAt(const std::string &line, std::size_t pos, std::size_t len)
{
    auto isWord = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (pos > 0 && isWord(line[pos - 1]))
        return false;
    std::size_t end = pos + len;
    return end >= line.size() || !isWord(line[end]);
}

std::vector<Suppression>
parseSuppressions(const std::string &raw)
{
    static const std::regex marker(
        R"(naspipe-lint:\s*allow\(([a-z0-9-]+)\)\s*(\S.*)?)");
    std::vector<Suppression> out;
    auto begin = std::sregex_iterator(raw.begin(), raw.end(), marker);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        Suppression s;
        s.rule = (*it)[1].str();
        s.hasReason = (*it)[2].matched &&
                      !trim((*it)[2].str()).empty();
        out.push_back(std::move(s));
    }
    return out;
}

bool
suppressed(const SourceLines &lines, std::size_t lineIdx,
           const std::string &rule)
{
    auto covers = [&](std::size_t idx) {
        for (const Suppression &s : parseSuppressions(lines.raw[idx]))
            if (s.rule == rule && s.hasReason)
                return true;
        return false;
    };
    if (covers(lineIdx))
        return true;
    return lineIdx > 0 && covers(lineIdx - 1);
}

} // namespace analysis
} // namespace naspipe
