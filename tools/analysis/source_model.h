/**
 * @file
 * Shared source model of the static analysis framework.
 *
 * Every pass (line rules, atomics, lock discipline) consumes the same
 * two per-line views of a C++ source file: `code` has comments and
 * string/char literals blanked out, so patterns inside documentation
 * or message strings never fire, and `raw` is the original text —
 * comment-scanning rules and the `naspipe-lint: allow(rule) reason`
 * suppressions read it. Loading, path normalization and suppression
 * parsing live here so per-file passes stay pure functions of a
 * SourceFile and whole-program passes of a vector of them.
 */

#ifndef NASPIPE_TOOLS_ANALYSIS_SOURCE_MODEL_H
#define NASPIPE_TOOLS_ANALYSIS_SOURCE_MODEL_H

#include <cstddef>
#include <string>
#include <vector>

namespace naspipe {
namespace analysis {

/** Per-line views of one source file. */
struct SourceLines {
    std::vector<std::string> raw;   ///< original text
    std::vector<std::string> code;  ///< comments/strings blanked
};

/** One loaded source file, ready for any pass. */
struct SourceFile {
    std::string path;  ///< normalized (forward slashes), as scanned
    SourceLines lines;
};

/** Split @p content into lines and blank comments/strings. */
SourceLines splitAndStrip(const std::string &content);

/** Build a SourceFile from in-memory content (tests, fixtures). */
SourceFile makeSourceFile(const std::string &path,
                          const std::string &content);

/**
 * Read @p path into a SourceFile. Returns false (and fills
 * @p error) when the file cannot be read.
 */
bool loadSourceFile(const std::string &path, SourceFile &out,
                    std::string *error);

/**
 * Expand @p path into the sorted list of .cc/.h files beneath it (or
 * the file itself). Sorted so runs are byte-stable — the analyzer
 * holds itself to the determinism bar it enforces.
 */
std::vector<std::string> collectSources(const std::string &path);

/** Backslashes → forward slashes. */
std::string normalizePath(const std::string &path);

/** Substring path test (paths are pre-normalized). */
bool pathContains(const std::string &path, const char *needle);

/** Strip leading/trailing spaces and tabs. */
std::string trim(const std::string &text);

/** Word-boundary check: @p pos begins a standalone identifier. */
bool wordAt(const std::string &line, std::size_t pos,
            std::size_t len);

/** One parsed `naspipe-lint: allow(rule) reason` marker. */
struct Suppression {
    std::string rule;
    bool hasReason = false;
};

/** Parse every allow() marker on one raw line. */
std::vector<Suppression> parseSuppressions(const std::string &raw);

/**
 * Whether @p rule is suppressed at @p lineIdx: a reasoned allow()
 * on the offending line or the line directly above it. A bare
 * allow() without a reason never suppresses.
 */
bool suppressed(const SourceLines &lines, std::size_t lineIdx,
                const std::string &rule);

} // namespace analysis
} // namespace naspipe

#endif // NASPIPE_TOOLS_ANALYSIS_SOURCE_MODEL_H
