/**
 * @file
 * Per-file line rules: the original nondeterminism hazards.
 *
 * These are the failure modes the CSP papers and this repo's own
 * history show corrupt results without crashing: hash-order iteration
 * feeding schedule/commit decisions, ambient randomness outside the
 * seeded RNG, address-ordered containers, wall-clock reads outside
 * the observability layer, and catch-all determinism deferral
 * comments. Each rule is a pure function of one SourceFile; the
 * whole-program passes live in atomics_pass.* and lock_pass.*.
 */

#ifndef NASPIPE_TOOLS_ANALYSIS_LINE_RULES_H
#define NASPIPE_TOOLS_ANALYSIS_LINE_RULES_H

#include <vector>

#include "analysis/finding.h"
#include "analysis/source_model.h"

namespace naspipe {
namespace analysis {

/** The line-rule table, in documentation order. */
const std::vector<RuleInfo> &lineRuleTable();

/** Run every line rule over @p file. */
std::vector<Finding> runLineRules(const SourceFile &file);

} // namespace analysis
} // namespace naspipe

#endif // NASPIPE_TOOLS_ANALYSIS_LINE_RULES_H
