#include "analysis/line_rules.h"

#include <regex>
#include <set>

namespace naspipe {
namespace analysis {

namespace {

constexpr const char *kUnorderedIteration = "unordered-iteration";
constexpr const char *kRawRandom = "raw-random";
constexpr const char *kPointerKeyContainer = "pointer-key-container";
constexpr const char *kDetSuppression = "det-suppression";
constexpr const char *kWallClock = "wall-clock";
constexpr const char *kFloatReduce = "float-reduce-outside-kernels";

/**
 * Variables declared as unordered containers in this file. Matches
 * `std::unordered_map<...> name` / `unordered_set<...> name{...}`;
 * the template argument match is non-greedy and single-line, which
 * covers the declaration styles this codebase uses.
 */
std::set<std::string>
unorderedVariables(const SourceLines &lines)
{
    static const std::regex decl(
        R"(unordered_(?:map|set)\s*<[^;{}()]*>\s*&?\s*(\w+)\s*[;={(])");
    std::set<std::string> names;
    for (const std::string &line : lines.code) {
        auto begin = std::sregex_iterator(line.begin(), line.end(),
                                          decl);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            names.insert((*it)[1].str());
    }
    return names;
}

/** Whether a code line is a `for` that mentions @p name as a word. */
bool
forLoopMentions(const std::string &code, const std::string &name)
{
    static const std::regex forHead(R"(\bfor\s*\()");
    if (!std::regex_search(code, forHead))
        return false;
    for (std::size_t pos = code.find(name); pos != std::string::npos;
         pos = code.find(name, pos + 1)) {
        if (wordAt(code, pos, name.size()))
            return true;
    }
    return false;
}

/** raw-random: rand()/srand()/std::random_device/time(...) calls. */
bool
hasRawRandom(const std::string &code)
{
    static const std::regex pattern(
        R"(\b(?:std\s*::\s*)?(?:rand|srand)\s*\()"
        R"(|std\s*::\s*random_device)"
        R"(|\brandom_device\s+\w)");
    if (std::regex_search(code, pattern))
        return true;
    // time(...) needs a by-hand word check: `.time(` / `->time(` /
    // `wallTime(` are methods, `time(` and `std::time(` are the
    // ambient clock.
    for (std::size_t pos = code.find("time");
         pos != std::string::npos; pos = code.find("time", pos + 1)) {
        if (!wordAt(code, pos, 4))
            continue;
        std::size_t after = pos + 4;
        while (after < code.size() &&
               (code[after] == ' ' || code[after] == '\t')) {
            after++;
        }
        if (after >= code.size() || code[after] != '(')
            continue;
        std::size_t before = pos;
        while (before > 0 && (code[before - 1] == ' ' ||
                              code[before - 1] == '\t')) {
            before--;
        }
        char prev = before > 0 ? code[before - 1] : '\0';
        if (prev == '.' || prev == '>')
            continue;  // member call, not the C library clock
        return true;
    }
    return false;
}

/**
 * Zero-initialized float variables in this file — candidate scalar
 * reduction accumulators. Matches `float name = 0;` / `= 0.f;` /
 * `= 0.0f;`; a nonzero initializer is a running value, not a
 * reduction seed, and stays out of the set.
 */
std::set<std::string>
floatAccumulatorNames(const SourceLines &lines)
{
    static const std::regex decl(
        R"(\bfloat\s+(\w+)\s*=\s*0(?:\.0*f?)?\s*[;,)])");
    std::set<std::string> names;
    for (const std::string &line : lines.code) {
        auto begin = std::sregex_iterator(line.begin(), line.end(),
                                          decl);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            names.insert((*it)[1].str());
    }
    return names;
}

/** Whether a code line feeds @p name with `+=`. */
bool
accumulatesInto(const std::string &code, const std::string &name)
{
    for (std::size_t pos = code.find(name); pos != std::string::npos;
         pos = code.find(name, pos + 1)) {
        if (!wordAt(code, pos, name.size()))
            continue;
        std::size_t after = pos + name.size();
        while (after < code.size() &&
               (code[after] == ' ' || code[after] == '\t')) {
            after++;
        }
        if (after + 1 < code.size() && code[after] == '+' &&
            code[after + 1] == '=')
            return true;
    }
    return false;
}

} // namespace

const std::vector<RuleInfo> &
lineRuleTable()
{
    static const std::vector<RuleInfo> kTable = {
        {kUnorderedIteration,
         "iteration over a std::unordered_map/unordered_set — hash "
         "order is implementation- and address-dependent, so any "
         "schedule or commit decision fed by it drifts silently"},
        {kRawRandom,
         "rand()/srand()/std::random_device/time() outside "
         "common/rng — ambient randomness breaks seed-determinism; "
         "use the seeded Philox4x32/deriveSeed instead"},
        {kPointerKeyContainer,
         "std::map/std::set keyed by a raw pointer — iteration order "
         "is allocation-address order, different every run"},
        {kDetSuppression,
         // Spelled split so the scanner never flags its own table.
         "TODO(" "det) comment — catch-all determinism deferrals are "
         "banned; fix the hazard or use a reasoned "
         "naspipe-lint: allow(rule) on the exact line"},
        {kWallClock,
         "std::chrono clock read outside src/obs/ and bench/ — "
         "wall-clock is the canonical nondeterminism source; measure "
         "through the obs::WallTimer / obs::now() wrappers so every "
         "clock dependency stays auditable in one place"},
        {kFloatReduce,
         "sequential float accumulation (`+=` into a zero-initialized "
         "float, or std::accumulate) outside src/tensor/kernels/ — "
         "summation order is part of the bitwise numeric contract; "
         "route reductions through kernels::treeSum/treeDot so the "
         "tree shape stays specified in one place"},
    };
    return kTable;
}

std::vector<Finding>
runLineRules(const SourceFile &file)
{
    const SourceLines &lines = file.lines;
    const std::set<std::string> unordered = unorderedVariables(lines);
    const std::set<std::string> accumulators =
        floatAccumulatorNames(lines);
    const bool inRngHome = pathContains(file.path, "common/rng.");
    const bool inClockHome = pathContains(file.path, "src/obs/") ||
                             pathContains(file.path, "bench/");
    const bool inKernelHome =
        pathContains(file.path, "src/tensor/kernels/");

    std::vector<Finding> findings;
    auto add = [&](std::size_t idx, const char *rule) {
        if (suppressed(lines, idx, rule))
            return;
        Finding f;
        f.file = file.path;
        f.line = static_cast<int>(idx) + 1;
        f.rule = rule;
        f.excerpt = trim(lines.raw[idx]);
        findings.push_back(std::move(f));
    };

    static const std::regex pointerKey(
        R"(std\s*::\s*(?:map|set)\s*<\s*[^,<>]*\*)");
    static const std::regex todoDet(R"(TODO\s*\(\s*det\s*\))");
    static const std::regex wallClock(
        R"(\b(?:steady_clock|system_clock|high_resolution_clock)\b)");

    for (std::size_t i = 0; i < lines.code.size(); i++) {
        const std::string &code = lines.code[i];
        const std::string &raw = lines.raw[i];

        for (const std::string &name : unordered) {
            if (forLoopMentions(code, name)) {
                add(i, kUnorderedIteration);
                break;
            }
        }
        if (!inRngHome && hasRawRandom(code))
            add(i, kRawRandom);
        if (!inKernelHome) {
            for (const std::string &name : accumulators) {
                if (accumulatesInto(code, name)) {
                    add(i, kFloatReduce);
                    break;
                }
            }
            if (code.find("std::accumulate") != std::string::npos ||
                code.find("std :: accumulate") != std::string::npos)
                add(i, kFloatReduce);
        }
        if (std::regex_search(code, pointerKey))
            add(i, kPointerKeyContainer);
        if (!inClockHome && std::regex_search(code, wallClock))
            add(i, kWallClock);
        if (std::regex_search(raw, todoDet))
            add(i, kDetSuppression);
    }
    return findings;
}

} // namespace analysis
} // namespace naspipe
