/**
 * @file
 * Lock-discipline pass: whole-program lock-order analysis over the
 * RankedMutex registry (src/common/lock_rank.h).
 *
 * The pass runs in three stages over the full source set:
 *
 *   1. Registry: parse the LockRank enum — the one documented
 *      partial order — into {rank name → level}.
 *   2. Declarations: collect every
 *      `RankedMutex name{LockRank::Rank}` /
 *      `RankedSharedMutex name(LockRank::Rank)` site repo-wide into
 *      a {variable name → rank} table. Unknown ranks and one name
 *      declared under two different ranks are findings — the
 *      acquisition resolver is name-based and needs both invariants.
 *   3. Acquisitions: per file, track guard scopes
 *      (`std::lock_guard`/`unique_lock`/`scoped_lock`/`shared_lock`
 *      over registered names) through brace depth, explicit
 *      `.unlock()`/`.lock()`, and flag:
 *        - acquiring a rank ≤ any currently held rank
 *          (lock-rank-order — the static twin of the runtime
 *          witness);
 *        - a cycle in the accumulated rank-order graph built from
 *          every observed nested acquisition (lock-cycle — a
 *          potential deadlock even when each edge looks locally
 *          reasonable);
 *        - blocking calls (queue push/pop, condition waits, join,
 *          waitReadable) while holding a guard, except a condition
 *          wait on the caller's own sole unique_lock/shared_lock
 *          (blocking-under-lock);
 *        - raw std::mutex / std::shared_mutex /
 *          std::condition_variable declarations in src/ outside the
 *          wrapper itself (raw-mutex — unranked locks are invisible
 *          to both the analyzer and the witness).
 *
 * The analysis is token-level and intra-procedural by design — the
 * same tradeoff as the rest of the lint: zero build-graph coupling,
 * byte-stable output, and the codebase's formatting conventions make
 * one-statement-per-line tracking reliable. Cross-function holds are
 * covered dynamically by the runtime witness.
 */

#ifndef NASPIPE_TOOLS_ANALYSIS_LOCK_PASS_H
#define NASPIPE_TOOLS_ANALYSIS_LOCK_PASS_H

#include <map>
#include <string>
#include <vector>

#include "analysis/finding.h"
#include "analysis/source_model.h"

namespace naspipe {
namespace analysis {

/** The parsed LockRank partial order: rank name → level. */
class LockRegistry
{
  public:
    /**
     * Parse the `enum class LockRank` block of @p lockRankHeader
     * (src/common/lock_rank.h or a test fixture of the same shape).
     */
    static LockRegistry parse(const SourceFile &lockRankHeader);

    bool empty() const { return _levels.empty(); }

    /** Level of @p rank, or -1 when unregistered. */
    int levelOf(const std::string &rank) const;

    /** All ranks, ascending by level. */
    std::vector<std::string> ranksByLevel() const;

  private:
    std::map<std::string, int> _levels;
};

/** The lock-pass rule table. */
const std::vector<RuleInfo> &lockRuleTable();

/**
 * Run the raw-mutex rule alone over @p file (per-file; part of the
 * combined per-file scan so single-file scans still catch unranked
 * mutexes without whole-program context).
 */
std::vector<Finding> runRawMutexRule(const SourceFile &file);

/**
 * Run the whole-program lock-discipline pass: declaration
 * collection, rank-order checking, cycle detection and
 * blocking-under-lock over @p files against @p registry. Does not
 * include the per-file raw-mutex rule.
 */
std::vector<Finding> runLockPass(const LockRegistry &registry,
                                 const std::vector<SourceFile> &files);

} // namespace analysis
} // namespace naspipe

#endif // NASPIPE_TOOLS_ANALYSIS_LOCK_PASS_H
