/**
 * @file
 * Findings and the baseline gate, shared by every analysis pass.
 *
 * A finding's baseline key deliberately excludes the line number so
 * unrelated edits above a baselined finding do not resurrect it; it
 * is keyed on (rule, file, excerpt) instead. The checked-in baseline
 * only ever holds pre-existing findings — the `lint` build target
 * fails on anything new, and new code earns a pass either by fixing
 * the hazard or by a reasoned `naspipe-lint: allow(rule)` comment.
 */

#ifndef NASPIPE_TOOLS_ANALYSIS_FINDING_H
#define NASPIPE_TOOLS_ANALYSIS_FINDING_H

#include <set>
#include <string>
#include <vector>

namespace naspipe {
namespace analysis {

/** One rule of a pass's table (name is the allow()/baseline handle). */
struct RuleInfo {
    std::string name;
    std::string description;
};

/** One hazard hit. */
struct Finding {
    std::string file;     ///< path as scanned (forward slashes)
    int line = 0;         ///< 1-based line number
    std::string rule;     ///< rule name
    std::string excerpt;  ///< trimmed offending source line
    bool baselined = false;  ///< present in the baseline file

    /** "file:line: [rule] excerpt" rendering. */
    std::string describe() const;
};

/** Stable baseline key of a finding (line numbers excluded). */
std::string baselineKey(const Finding &finding);

/**
 * Load a baseline file (one key per line, '#' comments). A missing
 * file is an empty baseline, not an error; a present-but-unreadable
 * file fails.
 */
bool loadBaseline(const std::string &path, std::set<std::string> &out,
                  std::string *error);

/** Render findings as baseline file content. */
std::string renderBaseline(const std::vector<Finding> &findings);

/**
 * Mark findings whose key appears in @p baseline; returns the number
 * of findings that remain un-baselined (the build-failing count).
 */
std::size_t applyBaseline(std::vector<Finding> &findings,
                          const std::set<std::string> &baseline);

} // namespace analysis
} // namespace naspipe

#endif // NASPIPE_TOOLS_ANALYSIS_FINDING_H
