/**
 * @file
 * Atomics pass: reviewed memory orderings across all of src/.
 *
 * The threaded executor's reproducibility proof rests on
 * acquire/release edges (CommitGate commits publish parameter bytes
 * to the next reader). A relaxed atomic is not wrong per se — a
 * counter nobody sequences against is fine — but each one must be
 * reviewed: the rule fires on every `memory_order_relaxed` under
 * src/ and is silenced only by a reasoned per-site
 * `naspipe-lint: allow(relaxed-memory-order)` annotation stating why
 * the ordering cannot leak into committed state. This generalizes
 * the original rule, which was restricted to src/exec/ — the serve,
 * fault and train layers carry atomics on exactly the same proof.
 */

#ifndef NASPIPE_TOOLS_ANALYSIS_ATOMICS_PASS_H
#define NASPIPE_TOOLS_ANALYSIS_ATOMICS_PASS_H

#include <vector>

#include "analysis/finding.h"
#include "analysis/source_model.h"

namespace naspipe {
namespace analysis {

/** The atomics-pass rule table. */
const std::vector<RuleInfo> &atomicsRuleTable();

/** Run the atomics pass over @p file. */
std::vector<Finding> runAtomicsPass(const SourceFile &file);

} // namespace analysis
} // namespace naspipe

#endif // NASPIPE_TOOLS_ANALYSIS_ATOMICS_PASS_H
