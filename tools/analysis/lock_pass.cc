#include "analysis/lock_pass.h"

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace naspipe {
namespace analysis {

namespace {

constexpr const char *kLockRankOrder = "lock-rank-order";
constexpr const char *kLockCycle = "lock-cycle";
constexpr const char *kBlockingUnderLock = "blocking-under-lock";
constexpr const char *kRawMutex = "raw-mutex";
constexpr const char *kUnknownLockRank = "unknown-lock-rank";
constexpr const char *kAmbiguousLockName = "ambiguous-lock-name";

/** One `RankedMutex name{LockRank::Rank}` declaration site. */
struct LockDecl {
    std::string var;
    std::string rank;
    const SourceFile *file = nullptr;
    std::size_t lineIdx = 0;
};

/** One guard active in the current scope of a file walk. */
struct ActiveGuard {
    std::string guardVar;  ///< guard object name ("lock")
    std::string lockVar;   ///< ranked mutex it holds ("_queueMu")
    std::string rank;
    int level = 0;
    std::string kind;  ///< lock_guard | unique_lock | ...
    int declDepth = 0;
    bool engaged = true;  ///< false between .unlock() and .lock()
};

/** One observed nested acquisition: held rank → acquired rank. */
struct RankEdge {
    const SourceFile *file = nullptr;
    std::size_t lineIdx = 0;
};

Finding
makeFinding(const SourceFile &file, std::size_t lineIdx,
            const char *rule)
{
    Finding f;
    f.file = file.path;
    f.line = static_cast<int>(lineIdx) + 1;
    f.rule = rule;
    f.excerpt = trim(file.lines.raw[lineIdx]);
    return f;
}

/** Last identifier of an expression ("im.execIncidentMu" → the
 *  member), or "" — the name the declaration table is keyed on. */
std::string
lastIdentifier(const std::string &expr)
{
    static const std::regex ident(R"([A-Za-z_]\w*)");
    std::string last;
    auto begin = std::sregex_iterator(expr.begin(), expr.end(), ident);
    for (auto it = begin; it != std::sregex_iterator(); ++it)
        last = it->str();
    return last;
}

/** Split a guard-constructor argument list on top-level commas. */
std::vector<std::string>
splitArgs(const std::string &args)
{
    std::vector<std::string> out;
    int depth = 0;
    std::string current;
    for (char c : args) {
        if (c == '(' || c == '<' || c == '{' || c == '[')
            depth++;
        else if (c == ')' || c == '>' || c == '}' || c == ']')
            depth--;
        if (c == ',' && depth == 0) {
            out.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!trim(current).empty())
        out.push_back(current);
    return out;
}

/** Whether any guard in @p guards is engaged. */
bool
anyEngaged(const std::vector<ActiveGuard> &guards)
{
    for (const ActiveGuard &g : guards)
        if (g.engaged)
            return true;
    return false;
}

int
engagedCount(const std::vector<ActiveGuard> &guards)
{
    int n = 0;
    for (const ActiveGuard &g : guards)
        if (g.engaged)
            n++;
    return n;
}

} // namespace

LockRegistry
LockRegistry::parse(const SourceFile &lockRankHeader)
{
    LockRegistry registry;
    static const std::regex entry(R"(^\s*(\w+)\s*=\s*(\d+)\s*,?)");
    bool inEnum = false;
    for (std::size_t i = 0; i < lockRankHeader.lines.code.size();
         i++) {
        const std::string &code = lockRankHeader.lines.code[i];
        if (!inEnum) {
            if (code.find("enum class LockRank") != std::string::npos)
                inEnum = true;
            continue;
        }
        if (code.find("};") != std::string::npos)
            break;
        std::smatch m;
        if (std::regex_search(code, m, entry))
            registry._levels[m[1].str()] = std::stoi(m[2].str());
    }
    return registry;
}

int
LockRegistry::levelOf(const std::string &rank) const
{
    auto it = _levels.find(rank);
    return it == _levels.end() ? -1 : it->second;
}

std::vector<std::string>
LockRegistry::ranksByLevel() const
{
    std::vector<std::pair<int, std::string>> byLevel;
    for (const auto &entry : _levels)
        byLevel.emplace_back(entry.second, entry.first);
    std::sort(byLevel.begin(), byLevel.end());
    std::vector<std::string> out;
    for (const auto &entry : byLevel)
        out.push_back(entry.second);
    return out;
}

const std::vector<RuleInfo> &
lockRuleTable()
{
    static const std::vector<RuleInfo> kTable = {
        {kRawMutex,
         "raw std::mutex/std::shared_mutex/std::condition_variable "
         "declared in src/ outside common/lock_rank — unranked locks "
         "are invisible to the lock-order analyzer and the runtime "
         "witness; declare a RankedMutex with a LockRank instead "
         "(condition variables pair with it via "
         "condition_variable_any)"},
        {kLockRankOrder,
         "acquiring a RankedMutex whose rank is <= a rank already "
         "held in the same scope — the declared partial order "
         "(src/common/lock_rank.h) requires strictly ascending "
         "acquisition; this ordering can deadlock against a thread "
         "acquiring the same pair in rank order"},
        {kLockCycle,
         "cycle in the whole-repo lock-order graph built from every "
         "observed nested acquisition — some interleaving of these "
         "sites can deadlock even though each site looks locally "
         "consistent"},
        {kBlockingUnderLock,
         "blocking call (queue push/pop, condition wait, thread "
         "join, gate waitReadable) while holding a ranked lock — the "
         "blocked thread holds its rank across an unbounded wait, "
         "wedging every thread that needs it; release the guard "
         "first (a condition wait on the caller's own sole "
         "unique_lock is the one sanctioned pattern)"},
        {kUnknownLockRank,
         "RankedMutex declared with a rank that is not in the "
         "LockRank enum — the registry in src/common/lock_rank.h is "
         "the single source of truth for the partial order"},
        {kAmbiguousLockName,
         "one mutex variable name declared under two different ranks "
         "— acquisition sites resolve ranks by name, so names must "
         "be unique per rank repo-wide (rename one of them)"},
    };
    return kTable;
}

std::vector<Finding>
runRawMutexRule(const SourceFile &file)
{
    std::vector<Finding> findings;
    if (!pathContains(file.path, "src/"))
        return findings;
    // The wrapper itself legitimately owns the only raw primitives.
    if (pathContains(file.path, "common/lock_rank."))
        return findings;
    // Declarations only: `std::mutex name` / `std::condition_variable
    // name`. Template arguments (`lock_guard<std::mutex>`) and
    // `condition_variable_any` do not match.
    static const std::regex decl(
        R"(std\s*::\s*(?:recursive_|timed_|recursive_timed_|shared_)?)"
        R"(mutex\s+\w+|std\s*::\s*condition_variable\s+\w+)");
    const SourceLines &lines = file.lines;
    for (std::size_t i = 0; i < lines.code.size(); i++) {
        if (!std::regex_search(lines.code[i], decl))
            continue;
        if (suppressed(lines, i, kRawMutex))
            continue;
        findings.push_back(makeFinding(file, i, kRawMutex));
    }
    return findings;
}

std::vector<Finding>
runLockPass(const LockRegistry &registry,
            const std::vector<SourceFile> &files)
{
    std::vector<Finding> findings;
    auto addUnlessSuppressed = [&](const SourceFile &file,
                                   std::size_t lineIdx,
                                   const char *rule) {
        if (!suppressed(file.lines, lineIdx, rule))
            findings.push_back(makeFinding(file, lineIdx, rule));
    };

    // ---- Stage 2: repo-wide declaration table -------------------
    static const std::regex declPattern(
        R"(\bRanked(?:Shared)?Mutex\s+(\w+)\s*[({]\s*)"
        R"(LockRank\s*::\s*(\w+))");
    std::map<std::string, LockDecl> decls;  // var name → first decl
    for (const SourceFile &file : files) {
        for (std::size_t i = 0; i < file.lines.code.size(); i++) {
            const std::string &code = file.lines.code[i];
            auto begin = std::sregex_iterator(code.begin(),
                                              code.end(),
                                              declPattern);
            for (auto it = begin; it != std::sregex_iterator();
                 ++it) {
                LockDecl decl;
                decl.var = (*it)[1].str();
                decl.rank = (*it)[2].str();
                decl.file = &file;
                decl.lineIdx = i;
                if (registry.levelOf(decl.rank) < 0)
                    addUnlessSuppressed(file, i, kUnknownLockRank);
                auto found = decls.find(decl.var);
                if (found == decls.end()) {
                    decls.emplace(decl.var, decl);
                } else if (found->second.rank != decl.rank) {
                    addUnlessSuppressed(file, i,
                                        kAmbiguousLockName);
                }
            }
        }
    }

    // ---- Stage 3: per-file acquisition walk ---------------------
    static const std::regex guardPattern(
        R"(std\s*::\s*(lock_guard|unique_lock|scoped_lock|)"
        R"(shared_lock)\s*(?:<[^;>]*>)?\s+(\w+)\s*[({]([^;]*)[)}])");
    static const std::regex unlockPattern(
        R"(\b(\w+)\s*\.\s*unlock(?:_shared)?\s*\(\s*\))");
    static const std::regex relockPattern(
        R"(\b(\w+)\s*\.\s*lock(?:_shared)?\s*\(\s*\))");
    static const std::regex blockingPattern(
        R"(\.\s*(wait_until|wait_for|wait|join|pop|push)\s*\()"
        R"(|\bwaitReadable\s*\()");

    // Accumulated rank-order graph: (held level, acquired level) →
    // one representative site.
    std::map<std::pair<int, int>, RankEdge> edges;
    std::map<int, std::string> levelNames;

    for (const SourceFile &file : files) {
        std::vector<ActiveGuard> guards;
        int depth = 0;
        for (std::size_t i = 0; i < file.lines.code.size(); i++) {
            const std::string &code = file.lines.code[i];

            // Explicit unlock/relock on an existing guard object.
            for (std::sregex_iterator it(code.begin(), code.end(),
                                         unlockPattern), end;
                 it != end; ++it) {
                const std::string var = (*it)[1].str();
                for (ActiveGuard &g : guards)
                    if (g.guardVar == var)
                        g.engaged = false;
            }
            for (std::sregex_iterator it(code.begin(), code.end(),
                                         relockPattern), end;
                 it != end; ++it) {
                const std::string var = (*it)[1].str();
                for (ActiveGuard &g : guards) {
                    if (g.guardVar != var || g.engaged)
                        continue;
                    for (const ActiveGuard &held : guards) {
                        if (!held.engaged ||
                            held.guardVar == g.guardVar)
                            continue;
                        if (held.level >= g.level)
                            addUnlessSuppressed(file, i,
                                                kLockRankOrder);
                    }
                    g.engaged = true;
                }
            }

            // Blocking calls while a guard is engaged.
            std::smatch blocking;
            if (anyEngaged(guards) &&
                std::regex_search(code, blocking, blockingPattern)) {
                const std::string op = blocking[1].matched
                                           ? blocking[1].str()
                                           : "waitReadable";
                bool sanctioned = false;
                if (op == "wait" || op == "wait_for" ||
                    op == "wait_until") {
                    // cv.wait(lock, ...) on the caller's own sole
                    // unique_lock/shared_lock is the normal pattern:
                    // the wait releases that lock while sleeping.
                    std::size_t argsFrom =
                        static_cast<std::size_t>(blocking.position()) +
                        blocking.length();
                    std::string firstArg = code.substr(argsFrom);
                    std::size_t comma = firstArg.find(',');
                    std::size_t close = firstArg.find(')');
                    firstArg = firstArg.substr(
                        0, std::min(comma, close));
                    const std::string waitedOn =
                        lastIdentifier(firstArg);
                    for (const ActiveGuard &g : guards) {
                        if (g.engaged && g.guardVar == waitedOn &&
                            (g.kind == "unique_lock" ||
                             g.kind == "shared_lock") &&
                            engagedCount(guards) == 1) {
                            sanctioned = true;
                        }
                    }
                }
                if (!sanctioned)
                    addUnlessSuppressed(file, i, kBlockingUnderLock);
            }

            // New guard declarations.
            for (std::sregex_iterator it(code.begin(), code.end(),
                                         guardPattern), end;
                 it != end; ++it) {
                const std::string kind = (*it)[1].str();
                const std::string guardVar = (*it)[2].str();
                for (const std::string &arg :
                     splitArgs((*it)[3].str())) {
                    const std::string lockVar = lastIdentifier(arg);
                    auto decl = decls.find(lockVar);
                    if (decl == decls.end())
                        continue;  // unranked (std::mutex in tests)
                    const int level =
                        registry.levelOf(decl->second.rank);
                    if (level < 0)
                        continue;  // unknown-lock-rank, reported above
                    for (const ActiveGuard &held : guards) {
                        if (!held.engaged)
                            continue;
                        if (held.level >= level)
                            addUnlessSuppressed(file, i,
                                                kLockRankOrder);
                        RankEdge &edge =
                            edges[{held.level, level}];
                        if (edge.file == nullptr) {
                            edge.file = &file;
                            edge.lineIdx = i;
                        }
                        levelNames[held.level] = held.rank;
                        levelNames[level] = decl->second.rank;
                    }
                    ActiveGuard g;
                    g.guardVar = guardVar;
                    g.lockVar = lockVar;
                    g.rank = decl->second.rank;
                    g.level = level;
                    g.kind = kind;
                    g.declDepth = depth;
                    guards.push_back(std::move(g));
                }
            }

            // Brace depth last: a guard lives until its enclosing
            // block closes. Depth 0 also ends any guard leaked by
            // unbalanced parsing (macros, K&R braces).
            for (char c : code) {
                if (c == '{') {
                    depth++;
                } else if (c == '}') {
                    depth--;
                    if (depth < 0)
                        depth = 0;
                }
            }
            guards.erase(
                std::remove_if(guards.begin(), guards.end(),
                               [&](const ActiveGuard &g) {
                                   return depth == 0 ||
                                          depth < g.declDepth;
                               }),
                guards.end());
        }
    }

    // ---- Cycle detection over the accumulated rank graph --------
    // An edge (a, b) participates in a cycle iff b reaches a. With
    // the strictly-ascending discipline intact the graph is a DAG
    // and this loop emits nothing.
    std::map<int, std::set<int>> adjacency;
    for (const auto &entry : edges)
        adjacency[entry.first.first].insert(entry.first.second);
    auto reaches = [&](int from, int target) {
        std::set<int> seen;
        std::vector<int> stack{from};
        while (!stack.empty()) {
            int node = stack.back();
            stack.pop_back();
            if (node == target)
                return true;
            if (!seen.insert(node).second)
                continue;
            for (int next : adjacency[node])
                stack.push_back(next);
        }
        return false;
    };
    for (const auto &entry : edges) {
        const int from = entry.first.first;
        const int to = entry.first.second;
        if (!reaches(to, from))
            continue;
        const RankEdge &site = entry.second;
        if (suppressed(site.file->lines, site.lineIdx, kLockCycle))
            continue;
        Finding f = makeFinding(*site.file, site.lineIdx, kLockCycle);
        std::ostringstream note;
        note << "  [cycle " << levelNames[from] << " -> "
             << levelNames[to] << " -> ... -> " << levelNames[from]
             << "]";
        f.excerpt += note.str();
        findings.push_back(std::move(f));
    }

    return findings;
}

} // namespace analysis
} // namespace naspipe
