/**
 * @file
 * naspipe_lint engine facade over the multi-pass static analysis
 * framework in tools/analysis/.
 *
 * Historically this header WAS the analyzer — a single-pass line
 * scanner. It is now a thin aggregation layer: the shared source
 * model, the finding/baseline machinery and the individual passes
 * (per-file line rules, the repo-wide atomics pass, the
 * whole-program lock-discipline pass) live under tools/analysis/,
 * and this facade composes them behind the stable API the CLI and
 * the original tests use:
 *
 *   - scanSource()/scanFile() run every *per-file* pass (line rules,
 *     atomics, raw-mutex detection);
 *   - scanLockDiscipline() runs the *whole-program* lock pass over a
 *     loaded source set — rank-order violations, lock-order-graph
 *     cycles, blocking calls under a held rank — against the
 *     LockRank registry it auto-discovers in the set
 *     (src/common/lock_rank.h);
 *   - ruleTable() is the union of every pass's rules.
 *
 * A finding is suppressed only by
 *
 *     // naspipe-lint: allow(rule-name) <reason text>
 *
 * on the offending line or the line directly above it — the reason
 * is mandatory, a bare allow() does not suppress — or by an entry in
 * the checked-in baseline file (pre-existing findings only; the
 * `lint` build target fails on anything new).
 *
 * The engine is a separate static library so its unit tests
 * (tests/tools/test_naspipe_lint.cc, test_lock_analysis.cc) exercise
 * it in-process; the naspipe_lint binary is a thin CLI over it.
 */

#ifndef NASPIPE_TOOLS_LINT_RULES_H
#define NASPIPE_TOOLS_LINT_RULES_H

#include <set>
#include <string>
#include <vector>

#include "analysis/atomics_pass.h"
#include "analysis/finding.h"
#include "analysis/line_rules.h"
#include "analysis/lock_pass.h"
#include "analysis/source_model.h"

namespace naspipe {
namespace lint {

using analysis::Finding;
using analysis::RuleInfo;
using analysis::SourceFile;

/** The combined rule table of every pass, in documentation order. */
const std::vector<RuleInfo> &ruleTable();

/**
 * Run every per-file pass over @p content as one C++ source file.
 * @p path scopes the path-restricted rules (relaxed-memory-order and
 * raw-mutex fire only under src/, raw-random never fires in
 * common/rng.*, wall-clock never in src/obs/) and lands in the
 * findings; it is not opened.
 */
std::vector<Finding> scanSource(const std::string &path,
                                const std::string &content);

/**
 * Read and scan one file (per-file passes). Returns false (and
 * fills @p error) when the file cannot be read; findings append to
 * @p out.
 */
bool scanFile(const std::string &path, std::vector<Finding> &out,
              std::string *error);

/**
 * Run the whole-program lock-discipline pass over @p files. The
 * LockRank registry is discovered inside the set (the file whose
 * path ends in "common/lock_rank.h"); without one, declarations are
 * reported as unknown-lock-rank — you cannot audit ranked locks
 * without the partial order in scope.
 */
std::vector<Finding>
scanLockDiscipline(const std::vector<SourceFile> &files);

/**
 * Expand @p path into the sorted list of .cc/.h files beneath it (or
 * the file itself). Sorted so runs are byte-stable — the lint tool
 * holds itself to the determinism bar it enforces.
 */
std::vector<std::string> collectSources(const std::string &path);

/** Stable baseline key of a finding (line numbers excluded). */
std::string baselineKey(const Finding &finding);

/**
 * Load a baseline file (one key per line, '#' comments). A missing
 * file is an empty baseline, not an error; a present-but-unreadable
 * file fails.
 */
bool loadBaseline(const std::string &path, std::set<std::string> &out,
                  std::string *error);

/** Render findings as baseline file content. */
std::string renderBaseline(const std::vector<Finding> &findings);

/**
 * Mark findings whose key appears in @p baseline; returns the number
 * of findings that remain un-baselined (the build-failing count).
 */
std::size_t applyBaseline(std::vector<Finding> &findings,
                          const std::set<std::string> &baseline);

} // namespace lint
} // namespace naspipe

#endif // NASPIPE_TOOLS_LINT_RULES_H
