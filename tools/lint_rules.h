/**
 * @file
 * naspipe_lint engine: a token/regex-level C++ source scanner for
 * hazards that silently break bitwise reproducibility.
 *
 * The rule table (see ruleTable()) targets the failure modes the CSP
 * papers and this repo's own history show corrupt results without
 * crashing: hash-order iteration feeding schedule/commit decisions,
 * ambient randomness outside the seeded RNG, address-ordered
 * containers, and unreviewed relaxed atomics in the threaded
 * executor. A finding is suppressed only by
 *
 *     // naspipe-lint: allow(rule-name) <reason text>
 *
 * on the offending line or the line directly above it — the reason
 * is mandatory, a bare allow() does not suppress — or by an entry in
 * the checked-in baseline file (pre-existing findings only; the
 * `lint` build target fails on anything new). Catch-all determinism
 * deferral comments (TODO + "(det)") are themselves a finding.
 *
 * The engine is a separate static library so its unit tests
 * (tests/tools/test_naspipe_lint.cc) exercise it in-process; the
 * naspipe_lint binary is a thin CLI over it.
 */

#ifndef NASPIPE_TOOLS_LINT_RULES_H
#define NASPIPE_TOOLS_LINT_RULES_H

#include <set>
#include <string>
#include <vector>

namespace naspipe {
namespace lint {

/** One rule of the table (name is the allow()/baseline handle). */
struct RuleInfo {
    std::string name;
    std::string description;
};

/** The rule table, in documentation order. */
const std::vector<RuleInfo> &ruleTable();

/** One hazard hit. */
struct Finding {
    std::string file;     ///< path as scanned (forward slashes)
    int line = 0;         ///< 1-based line number
    std::string rule;     ///< rule name
    std::string excerpt;  ///< trimmed offending source line
    bool baselined = false;  ///< present in the baseline file

    /** "file:line: [rule] excerpt" rendering. */
    std::string describe() const;
};

/**
 * Scan @p content as one C++ source file. @p path scopes the
 * path-restricted rules (relaxed-memory-order fires only under
 * src/exec/, raw-random never fires in common/rng.*) and lands in
 * the findings; it is not opened.
 */
std::vector<Finding> scanSource(const std::string &path,
                                const std::string &content);

/**
 * Read and scan one file. Returns false (and fills @p error) when
 * the file cannot be read; findings append to @p out.
 */
bool scanFile(const std::string &path, std::vector<Finding> &out,
              std::string *error);

/**
 * Expand @p path into the sorted list of .cc/.h files beneath it (or
 * the file itself). Sorted so runs are byte-stable — the lint tool
 * holds itself to the determinism bar it enforces.
 */
std::vector<std::string> collectSources(const std::string &path);

/** Stable baseline key of a finding (line numbers excluded). */
std::string baselineKey(const Finding &finding);

/**
 * Load a baseline file (one key per line, '#' comments). A missing
 * file is an empty baseline, not an error; a present-but-unreadable
 * file fails.
 */
bool loadBaseline(const std::string &path, std::set<std::string> &out,
                  std::string *error);

/** Render findings as baseline file content. */
std::string renderBaseline(const std::vector<Finding> &findings);

/**
 * Mark findings whose key appears in @p baseline; returns the number
 * of findings that remain un-baselined (the build-failing count).
 */
std::size_t applyBaseline(std::vector<Finding> &findings,
                          const std::set<std::string> &baseline);

} // namespace lint
} // namespace naspipe

#endif // NASPIPE_TOOLS_LINT_RULES_H
