#!/usr/bin/env python3
"""Validate observability artifacts against their declared schemas.

Usage: check_obs_schema.py FILE [FILE ...]

Each file must be a JSON document produced by naspipe_cli
(--trace-out / --metrics-out) or naspipe_bench. The document kind is
auto-detected from its schema tag:

  naspipe-trace/1    Chrome trace-event export (otherData.schema)
  naspipe-metrics/1  unified metrics registry export
  naspipe-bench/1    committed perf trajectory (BENCH_<pr>.json)
  naspipe-bench/2    as /1 plus a required `recovery` section (the
                     threaded crash→recover→bitwise-verify record)
  naspipe-bench/3    as /2 plus a required `serve` section (the
                     multi-tenant shared-pool record: job count,
                     aggregate throughput, per-job bitwise gate)
  naspipe-bench/4    as /3 plus a required `numeric` section (the
                     kernel-layer record: sequential-vs-tree
                     reduction timings and the per-precision-mode
                     golden weight-hash gate)

Exits 0 when every file validates, 1 otherwise, printing one line per
problem. No third-party dependencies — CI runs this on a bare python3.
"""

import json
import sys

TRACE_SCHEMA = "naspipe-trace/1"
METRICS_SCHEMA = "naspipe-metrics/1"
BENCH_SCHEMAS = ("naspipe-bench/1", "naspipe-bench/2",
                 "naspipe-bench/3", "naspipe-bench/4")


def check_trace(doc, err):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        err("traceEvents missing or empty")
        return
    other = doc.get("otherData", {})
    if other.get("schema") != TRACE_SCHEMA:
        err("otherData.schema != %s" % TRACE_SCHEMA)
    for key in ("space", "executor", "mode"):
        if not other.get(key):
            err("otherData.%s missing" % key)
    if other.get("mode") not in ("logical", "wall"):
        err("otherData.mode must be logical|wall")
    span_count = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                err("event %d: unknown metadata %r" % (i, ev.get("name")))
            continue
        if ph != "X":
            err("event %d: unexpected phase %r" % (i, ph))
            continue
        span_count += 1
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in ev:
                err("event %d: missing %r" % (i, key))
        if float(ev.get("dur", 0)) <= 0:
            err("event %d: non-positive dur" % i)
    if span_count == 0:
        err("no X (span) events")


def check_histogram(name, hist, err):
    bounds = hist.get("bounds")
    counts = hist.get("counts")
    if not isinstance(bounds, list) or not isinstance(counts, list):
        err("histogram %s: bounds/counts missing" % name)
        return
    if len(counts) != len(bounds) + 1:
        err("histogram %s: len(counts) != len(bounds)+1" % name)
    if sorted(bounds) != bounds:
        err("histogram %s: bounds not ascending" % name)
    if sum(counts) != hist.get("total"):
        err("histogram %s: total != sum(counts)" % name)


def check_metrics(doc, err):
    if doc.get("schema") != METRICS_SCHEMA:
        err("schema != %s" % METRICS_SCHEMA)
    # A serve-mode export covers many jobs, so the per-run identity
    # headers live under job/<id>/... metrics instead.
    if doc.get("mode") == "serve":
        headers = ("mode", "stages")
    else:
        headers = ("space", "executor", "mode", "seed", "steps",
                   "stages")
    for key in headers:
        if key not in doc:
            err("header %r missing" % key)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        err("metrics object missing or empty")
        return
    keys = list(metrics.keys())
    if keys != sorted(keys):
        err("metric keys not in lexicographic order")
    for key in ("run/finished_subnets", "quality/supernet_hash"):
        if key not in metrics:
            err("required metric %r missing" % key)
    if doc.get("mode") == "serve":
        if metrics.get("serve/jobs", 0) < 1:
            err("serve-mode export without serve/jobs")
        for name in metrics:
            if name.startswith("job/"):
                break
        else:
            err("serve-mode export without job/<id>/ namespaces")
    for name, hist in doc.get("histograms", {}).items():
        check_histogram(name, hist, err)


def check_recovery(recovery, err):
    if not isinstance(recovery, dict):
        err("recovery section missing")
        return
    for key in ("workers", "ckpt_interval", "crash_step",
                "recoveries", "replayed", "recovery_s",
                "bitwise_match"):
        if key not in recovery:
            err("recovery.%s missing" % key)
    if not recovery.get("bitwise_match"):
        err("recovery: crash-recovered weights diverge from the "
            "fault-free run")
    if recovery.get("recoveries", 0) < 1:
        err("recovery: no recovery happened (crash never fired?)")
    if recovery.get("replayed", -1) < 0:
        err("recovery: negative replayed count")


def check_serve(serve, err):
    if not isinstance(serve, dict):
        err("serve section missing")
        return
    for key in ("stages", "jobs", "wall_s", "subnets_per_s",
                "per_job"):
        if key not in serve:
            err("serve.%s missing" % key)
    if serve.get("jobs", 0) < 1:
        err("serve: no jobs ran")
    per_job = serve.get("per_job")
    if not isinstance(per_job, list) or not per_job:
        err("serve.per_job missing or empty")
        return
    if len(per_job) != serve.get("jobs"):
        err("serve: jobs != len(per_job)")
    for entry in per_job:
        for key in ("job", "space", "seed", "steps", "hash",
                    "bitwise_match"):
            if key not in entry:
                err("serve job %s: %s missing"
                    % (entry.get("job"), key))
        if not entry.get("bitwise_match"):
            err("serve job %s (%s): shared-pool weights diverge "
                "from the solo run"
                % (entry.get("job"), entry.get("space")))


def check_numeric(numeric, err):
    if not isinstance(numeric, dict):
        err("numeric section missing")
        return
    reductions = numeric.get("reductions")
    if not isinstance(reductions, list) or not reductions:
        err("numeric.reductions missing or empty")
    else:
        for entry in reductions:
            for key in ("n", "seq_us", "tree_us", "speedup"):
                if key not in entry:
                    err("numeric reduction n=%s: %s missing"
                        % (entry.get("n"), key))
    goldens = numeric.get("goldens")
    if not isinstance(goldens, list) or not goldens:
        err("numeric.goldens missing or empty")
        return
    modes = set()
    for entry in goldens:
        for key in ("space", "mode", "workers", "steps", "hash",
                    "sim_threads_match", "golden_match"):
            if key not in entry:
                err("numeric golden %s/%s: %s missing"
                    % (entry.get("space"), entry.get("mode"), key))
        modes.add(entry.get("mode"))
        if not entry.get("sim_threads_match"):
            err("numeric golden %s/%s: sim and threads hashes "
                "DIVERGE" % (entry.get("space"), entry.get("mode")))
        if not entry.get("golden_match"):
            err("numeric golden %s/%s: weight hash diverges from "
                "the committed golden"
                % (entry.get("space"), entry.get("mode")))
    for mode in ("fp32", "fp16_rne"):
        if mode not in modes:
            err("numeric.goldens: no %s entry" % mode)


def check_bench(doc, err):
    if doc.get("schema") not in BENCH_SCHEMAS:
        err("schema not in %s" % (BENCH_SCHEMAS,))
    if not isinstance(doc.get("pr"), int):
        err("pr missing")
    micro = doc.get("micro")
    if not isinstance(micro, dict) or not micro:
        err("micro section missing or empty")
    else:
        for name, entry in micro.items():
            if entry.get("us_per_iter", -1) < 0 or \
                    entry.get("iterations", 0) < 1:
                err("micro %s: bad timing entry" % name)
    scaling = doc.get("scaling")
    if not isinstance(scaling, list) or not scaling:
        err("scaling section missing or empty")
    else:
        for entry in scaling:
            if not entry.get("bitwise_match"):
                err("scaling %s workers: sim/threads hash MISMATCH"
                    % entry.get("workers"))
    if doc.get("schema") in ("naspipe-bench/2", "naspipe-bench/3",
                             "naspipe-bench/4"):
        check_recovery(doc.get("recovery"), err)
    if doc.get("schema") in ("naspipe-bench/3", "naspipe-bench/4"):
        check_serve(doc.get("serve"), err)
    if doc.get("schema") == "naspipe-bench/4":
        check_numeric(doc.get("numeric"), err)
    stable = doc.get("stable", {})
    for key in ("supernet_hash", "final_loss",
                "logical_makespan_ticks", "logical_span_count"):
        if key not in stable:
            err("stable.%s missing" % key)


def check_file(path):
    problems = []

    def err(msg):
        problems.append("%s: %s" % (path, msg))

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["%s: unreadable or invalid JSON: %s" % (path, e)]

    schema = doc.get("schema") or \
        doc.get("otherData", {}).get("schema")
    if schema == TRACE_SCHEMA:
        check_trace(doc, err)
    elif schema == METRICS_SCHEMA:
        check_metrics(doc, err)
    elif schema in BENCH_SCHEMAS:
        check_bench(doc, err)
    else:
        err("unrecognized schema tag %r" % schema)
    return problems


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    failures = 0
    for path in argv[1:]:
        problems = check_file(path)
        if problems:
            failures += 1
            for p in problems:
                print("FAIL %s" % p)
        else:
            print("ok   %s" % path)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
