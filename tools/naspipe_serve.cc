/**
 * @file
 * naspipe_serve — run many supernet searches on one shared worker
 * pool (the multi-tenant search service, src/serve/).
 *
 * Usage:
 *   naspipe_serve [--gpus N] [--job SPEC]... [--jobs FILE]
 *                 [--max-inflight N] [--watchdog-interval-ms N]
 *                 [--metrics-out FILE.json] [--json] [--quiet]
 *
 * Each --job flag (repeatable) describes one search as
 * comma-separated key=value pairs:
 *
 *   --job space=NLP.c1,seed=11,steps=32,priority=2,ckpt=8
 *   --job space=CV.c1,seed=3,steps=24,fault=crash@12,retries=2
 *
 * Keys: name, space, seed, steps, priority (WRR weight), ckpt
 * (drained-checkpoint interval), ckpt-path, retries (consecutive
 * recovery retries), window (per-job in-flight cap), fault
 * (KIND@STEP with KIND crash|drop; repeatable, job-scoped).
 *
 * --jobs FILE reads one job spec per line ('#' comments). All jobs
 * share one pool of --gpus stage workers; every job's weights are
 * bitwise-identical to a solo run of the same spec — the cross-job
 * interleaving is deterministic (smooth weighted round-robin on the
 * logical clock) and CSP makes each job's numerics independent of
 * it anyway.
 *
 * The final status report is an aligned table, or a JSON array with
 * --json. --metrics-out writes the per-job namespaced metrics
 * registry (job/<id>/...; logical mode, byte-identical across
 * reruns of the same specs).
 *
 * Exit codes: 0 all jobs done, 2 bad arguments, 3 >= 1 job failed,
 * 5 >= 1 job exhausted its recovery retries, 6 service failure
 * (shared pool incident — every live job lost).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "obs/metrics_registry.h"
#include "serve/service.h"

namespace {

using namespace naspipe;

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [--gpus N] [--job SPEC]... [--jobs FILE]\n"
        "          [--max-inflight N] [--watchdog-interval-ms N]\n"
        "          [--metrics-out FILE.json] [--json] [--quiet]\n"
        "job SPEC: comma-separated key=value pairs with keys\n"
        "          name space seed steps priority ckpt ckpt-path\n"
        "          precision (fp32|fp16)\n"
        "          retries window fault (KIND@STEP, KIND crash|drop,\n"
        "          repeatable)\n"
        "exit:     0 all done, 2 bad args, 3 job failed,\n"
        "          5 recovery retries exhausted, 6 service failure\n",
        argv0);
}

[[noreturn]] void
argError(const char *argv0, const std::string &message)
{
    std::fprintf(stderr, "error: %s\n", message.c_str());
    usage(argv0);
    std::exit(2);
}

bool
parseWholeLong(const char *text, long &out)
{
    if (!text || *text == '\0')
        return false;
    char *end = nullptr;
    out = std::strtol(text, &end, 10);
    return end && *end == '\0';
}

std::string
jsonStatusArray(const std::vector<serve::JobStatus> &statuses)
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < statuses.size(); i++) {
        const serve::JobStatus &s = statuses[i];
        if (i)
            out << ",";
        out << "{\"id\":" << s.id << ",\"name\":\""
            << obs::jsonEscape(s.name) << "\",\"state\":\""
            << serve::jobStateName(s.state) << "\",\"priority\":"
            << s.priority << ",\"finished\":" << s.finished
            << ",\"total\":" << s.total << ",\"recoveries\":"
            << s.recoveries << ",\"supernet_hash\":"
            << s.supernetHash << ",\"error\":\""
            << obs::jsonEscape(s.error) << "\"}";
    }
    out << "]";
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    int gpus = 4;
    int maxInflight = 0;
    int watchdogIntervalMs = 2;
    bool json = false;
    bool quiet = false;
    std::string metricsOut;
    std::vector<serve::JobSpec> specs;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto nextValue = [&]() -> const char * {
            if (i + 1 >= argc)
                argError(argv[0], arg + " needs a value");
            return argv[++i];
        };
        auto intValue = [&](long lo, long hi) {
            long v = 0;
            if (!parseWholeLong(nextValue(), v) || v < lo ||
                v > hi) {
                argError(argv[0], arg + " needs an integer in [" +
                                      std::to_string(lo) + ", " +
                                      std::to_string(hi) + "]");
            }
            return v;
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--gpus") {
            gpus = static_cast<int>(intValue(1, 512));
        } else if (arg == "--max-inflight") {
            maxInflight = static_cast<int>(intValue(0, 100000));
        } else if (arg == "--watchdog-interval-ms") {
            watchdogIntervalMs = static_cast<int>(intValue(1, 60000));
        } else if (arg == "--job") {
            serve::JobSpec spec;
            std::string why;
            if (!serve::parseJobSpec(nextValue(), spec, &why))
                argError(argv[0], why);
            specs.push_back(std::move(spec));
        } else if (arg == "--jobs") {
            std::ifstream in(nextValue());
            if (!in)
                argError(argv[0], "cannot open jobs file '" +
                                      std::string(argv[i]) + "'");
            std::string line;
            int lineNo = 0;
            while (std::getline(in, line)) {
                lineNo++;
                std::size_t start =
                    line.find_first_not_of(" \t\r");
                if (start == std::string::npos ||
                    line[start] == '#')
                    continue;
                serve::JobSpec spec;
                std::string why;
                if (!serve::parseJobSpec(line.substr(start), spec,
                                         &why)) {
                    argError(argv[0],
                             "jobs file line " +
                                 std::to_string(lineNo) + ": " +
                                 why);
                }
                specs.push_back(std::move(spec));
            }
        } else if (arg == "--metrics-out") {
            metricsOut = nextValue();
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            argError(argv[0], "unknown argument " + arg);
        }
    }
    if (specs.empty())
        argError(argv[0], "no jobs given (--job or --jobs)");

    serve::ServiceConfig config;
    config.numStages = gpus;
    config.maxTotalInflight = maxInflight;
    config.watchdogPollMs = watchdogIntervalMs;
    serve::SearchService service(config);

    std::string why;
    std::vector<int> ids = service.submitBatch(specs, &why);
    if (ids.empty())
        argError(argv[0], why);
    service.drain();

    int outcome = service.run();

    std::vector<serve::JobStatus> statuses = service.status();
    if (json) {
        std::printf("%s\n", jsonStatusArray(statuses).c_str());
    } else if (!quiet) {
        TextTable table({"job", "name", "space", "state", "prio",
                         "done", "recov", "hash/error"});
        for (const serve::JobStatus &s : statuses) {
            std::string last;
            if (s.state == serve::JobState::Done) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%016llx",
                              static_cast<unsigned long long>(
                                  s.supernetHash));
                last = buf;
            } else {
                last = s.error;
            }
            const serve::ServeJob *job = service.job(s.id);
            table.addRow({std::to_string(s.id), s.name,
                          job ? job->spec().space : "?",
                          serve::jobStateName(s.state),
                          std::to_string(s.priority),
                          std::to_string(s.finished) + "/" +
                              std::to_string(s.total),
                          std::to_string(s.recoveries), last});
        }
        std::printf("%s", table.render().c_str());
        if (outcome == serve::SearchService::ServiceFailed) {
            std::printf("service failure: %s\n",
                        service.serviceError().c_str());
        }
    }

    if (!metricsOut.empty()) {
        std::ofstream out(metricsOut, std::ios::trunc);
        if (!out) {
            std::fprintf(stderr,
                         "error: cannot write metrics to '%s'\n",
                         metricsOut.c_str());
            return 3;
        }
        out << service.exportMetricsJson(/*stableOnly=*/true)
            << "\n";
    }
    return outcome;
}
