#!/usr/bin/env bash
# clang-format gate over *changed* files only: the tree predates the
# .clang-format config, so whole-tree enforcement would be one giant
# reformat commit. Instead, files touched relative to the merge base
# (origin/main, else HEAD~1, else the index) must be clean.
#
# Without clang-format on PATH (the minimal dev container) or outside
# a git checkout the check is skipped with a notice — unless
# NASPIPE_REQUIRE_FORMAT=1 is set (CI), which turns a missing tool
# into a failure so the gate cannot rot silently.
set -u

say() { echo "format-check: $*"; }

if ! command -v clang-format > /dev/null 2>&1; then
    if [ "${NASPIPE_REQUIRE_FORMAT:-0}" = "1" ]; then
        say "clang-format not found but NASPIPE_REQUIRE_FORMAT=1"
        exit 1
    fi
    say "clang-format not found; skipping (set" \
        "NASPIPE_REQUIRE_FORMAT=1 to make this an error)"
    exit 0
fi

if ! git rev-parse --git-dir > /dev/null 2>&1; then
    if [ "${NASPIPE_REQUIRE_FORMAT:-0}" = "1" ]; then
        say "not a git checkout but NASPIPE_REQUIRE_FORMAT=1"
        exit 1
    fi
    say "not a git checkout; skipping"
    exit 0
fi

# Changed .cc/.h files relative to the best available base.
base=""
if git rev-parse --verify origin/main > /dev/null 2>&1; then
    base=$(git merge-base HEAD origin/main)
elif git rev-parse --verify HEAD~1 > /dev/null 2>&1; then
    base=HEAD~1
fi
if [ -n "$base" ]; then
    changed=$(git diff --name-only --diff-filter=d "$base" -- \
        '*.cc' '*.h')
else
    changed=$(git diff --name-only --cached --diff-filter=d -- \
        '*.cc' '*.h')
fi

if [ -z "$changed" ]; then
    say "no changed C++ files"
    exit 0
fi

bad=0
count=0
for file in $changed; do
    [ -f "$file" ] || continue
    count=$((count + 1))
    if ! clang-format --dry-run --Werror "$file" > /dev/null 2>&1; then
        say "needs formatting: $file"
        bad=1
    fi
done

if [ "$bad" -ne 0 ]; then
    say "run: clang-format -i <file> (style: .clang-format)"
    exit 1
fi
say "$count changed file(s) clean"
exit 0
