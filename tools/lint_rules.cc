#include "lint_rules.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

namespace naspipe {
namespace lint {

namespace {

constexpr const char *kUnorderedIteration = "unordered-iteration";
constexpr const char *kRawRandom = "raw-random";
constexpr const char *kPointerKeyContainer = "pointer-key-container";
constexpr const char *kRelaxedMemoryOrder = "relaxed-memory-order";
constexpr const char *kDetSuppression = "det-suppression";
constexpr const char *kWallClock = "wall-clock";

std::string
normalizePath(const std::string &path)
{
    std::string out = path;
    std::replace(out.begin(), out.end(), '\\', '/');
    return out;
}

bool
pathContains(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

std::string
trim(const std::string &text)
{
    std::size_t first = text.find_first_not_of(" \t");
    if (first == std::string::npos)
        return "";
    std::size_t last = text.find_last_not_of(" \t");
    return text.substr(first, last - first + 1);
}

/**
 * Per-line views of one source file: `code` has comments and
 * string/char literals blanked out (so patterns inside documentation
 * or message strings never fire), `raw` is the original line (the
 * comment-scanning rules and the allow() suppressions read it).
 */
struct SourceLines {
    std::vector<std::string> raw;
    std::vector<std::string> code;
};

SourceLines
splitAndStrip(const std::string &content)
{
    SourceLines out;
    enum class State {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    State state = State::Code;
    std::string raw, code;
    auto flush = [&] {
        out.raw.push_back(raw);
        out.code.push_back(code);
        raw.clear();
        code.clear();
    };
    for (std::size_t i = 0; i < content.size(); i++) {
        char c = content[i];
        char next = i + 1 < content.size() ? content[i + 1] : '\0';
        if (c == '\n') {
            if (state == State::LineComment)
                state = State::Code;
            flush();
            continue;
        }
        raw += c;
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                code += ' ';
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                code += ' ';
            } else if (c == '"') {
                state = State::String;
                code += ' ';
            } else if (c == '\'') {
                state = State::Char;
                code += ' ';
            } else {
                code += c;
            }
            break;
          case State::LineComment:
            code += ' ';
            break;
          case State::BlockComment:
            code += ' ';
            if (c == '*' && next == '/') {
                raw += next;
                code += ' ';
                i++;
                state = State::Code;
            }
            break;
          case State::String:
          case State::Char: {
            code += ' ';
            if (c == '\\' && next != '\0' && next != '\n') {
                raw += next;
                code += ' ';
                i++;
            } else if ((state == State::String && c == '"') ||
                       (state == State::Char && c == '\'')) {
                state = State::Code;
            }
            break;
          }
        }
    }
    flush();
    return out;
}

/** Word-boundary check: @p pos begins a standalone identifier. */
bool
wordAt(const std::string &line, std::size_t pos, std::size_t len)
{
    auto isWord = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (pos > 0 && isWord(line[pos - 1]))
        return false;
    std::size_t end = pos + len;
    return end >= line.size() || !isWord(line[end]);
}

/**
 * Variables declared as unordered containers in this file. Matches
 * `std::unordered_map<...> name` / `unordered_set<...> name{...}`;
 * the template argument match is non-greedy and single-line, which
 * covers the declaration styles this codebase uses.
 */
std::set<std::string>
unorderedVariables(const SourceLines &lines)
{
    static const std::regex decl(
        R"(unordered_(?:map|set)\s*<[^;{}()]*>\s*&?\s*(\w+)\s*[;={(])");
    std::set<std::string> names;
    for (const std::string &line : lines.code) {
        auto begin = std::sregex_iterator(line.begin(), line.end(),
                                          decl);
        for (auto it = begin; it != std::sregex_iterator(); ++it)
            names.insert((*it)[1].str());
    }
    return names;
}

/** Whether a code line is a `for` that mentions @p name as a word. */
bool
forLoopMentions(const std::string &code, const std::string &name)
{
    static const std::regex forHead(R"(\bfor\s*\()");
    if (!std::regex_search(code, forHead))
        return false;
    for (std::size_t pos = code.find(name); pos != std::string::npos;
         pos = code.find(name, pos + 1)) {
        if (wordAt(code, pos, name.size()))
            return true;
    }
    return false;
}

/** raw-random: rand()/srand()/std::random_device/time(...) calls. */
bool
hasRawRandom(const std::string &code)
{
    static const std::regex pattern(
        R"(\b(?:std\s*::\s*)?(?:rand|srand)\s*\()"
        R"(|std\s*::\s*random_device)"
        R"(|\brandom_device\s+\w)");
    if (std::regex_search(code, pattern))
        return true;
    // time(...) needs a by-hand word check: `.time(` / `->time(` /
    // `wallTime(` are methods, `time(` and `std::time(` are the
    // ambient clock.
    for (std::size_t pos = code.find("time");
         pos != std::string::npos; pos = code.find("time", pos + 1)) {
        if (!wordAt(code, pos, 4))
            continue;
        std::size_t after = pos + 4;
        while (after < code.size() &&
               (code[after] == ' ' || code[after] == '\t')) {
            after++;
        }
        if (after >= code.size() || code[after] != '(')
            continue;
        std::size_t before = pos;
        while (before > 0 && (code[before - 1] == ' ' ||
                              code[before - 1] == '\t')) {
            before--;
        }
        char prev = before > 0 ? code[before - 1] : '\0';
        if (prev == '.' || prev == '>')
            continue;  // member call, not the C library clock
        return true;
    }
    return false;
}

struct Suppression {
    std::string rule;
    bool hasReason = false;
};

/** Parse `naspipe-lint: allow(rule) reason` markers on a raw line. */
std::vector<Suppression>
parseSuppressions(const std::string &raw)
{
    static const std::regex marker(
        R"(naspipe-lint:\s*allow\(([a-z0-9-]+)\)\s*(\S.*)?)");
    std::vector<Suppression> out;
    auto begin = std::sregex_iterator(raw.begin(), raw.end(), marker);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        Suppression s;
        s.rule = (*it)[1].str();
        s.hasReason = (*it)[2].matched &&
                      !trim((*it)[2].str()).empty();
        out.push_back(std::move(s));
    }
    return out;
}

bool
suppressed(const SourceLines &lines, std::size_t lineIdx,
           const char *rule)
{
    auto covers = [&](std::size_t idx) {
        for (const Suppression &s : parseSuppressions(lines.raw[idx]))
            if (s.rule == rule && s.hasReason)
                return true;
        return false;
    };
    if (covers(lineIdx))
        return true;
    return lineIdx > 0 && covers(lineIdx - 1);
}

} // namespace

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> kTable = {
        {kUnorderedIteration,
         "iteration over a std::unordered_map/unordered_set — hash "
         "order is implementation- and address-dependent, so any "
         "schedule or commit decision fed by it drifts silently"},
        {kRawRandom,
         "rand()/srand()/std::random_device/time() outside "
         "common/rng — ambient randomness breaks seed-determinism; "
         "use the seeded Philox4x32/deriveSeed instead"},
        {kPointerKeyContainer,
         "std::map/std::set keyed by a raw pointer — iteration order "
         "is allocation-address order, different every run"},
        {kRelaxedMemoryOrder,
         "std::memory_order_relaxed inside src/exec/ — the threaded "
         "executor's reproducibility proof depends on acquire/release "
         "edges; every relaxed atomic there needs an explicit "
         "reasoned allow()"},
        {kDetSuppression,
         // Spelled split so the scanner never flags its own table.
         "TODO(" "det) comment — catch-all determinism deferrals are "
         "banned; fix the hazard or use a reasoned "
         "naspipe-lint: allow(rule) on the exact line"},
        {kWallClock,
         "std::chrono clock read outside src/obs/ and bench/ — "
         "wall-clock is the canonical nondeterminism source; measure "
         "through the obs::WallTimer / obs::now() wrappers so every "
         "clock dependency stays auditable in one place"},
    };
    return kTable;
}

std::string
Finding::describe() const
{
    std::ostringstream oss;
    oss << file << ":" << line << ": [" << rule << "] " << excerpt;
    if (baselined)
        oss << "  (baselined)";
    return oss.str();
}

std::vector<Finding>
scanSource(const std::string &path, const std::string &content)
{
    const std::string normalized = normalizePath(path);
    const SourceLines lines = splitAndStrip(content);
    const std::set<std::string> unordered = unorderedVariables(lines);
    const bool inExec = pathContains(normalized, "src/exec/");
    const bool inRngHome = pathContains(normalized, "common/rng.");
    const bool inClockHome = pathContains(normalized, "src/obs/") ||
                             pathContains(normalized, "bench/");

    std::vector<Finding> findings;
    auto add = [&](std::size_t idx, const char *rule) {
        if (suppressed(lines, idx, rule))
            return;
        Finding f;
        f.file = normalized;
        f.line = static_cast<int>(idx) + 1;
        f.rule = rule;
        f.excerpt = trim(lines.raw[idx]);
        findings.push_back(std::move(f));
    };

    static const std::regex pointerKey(
        R"(std\s*::\s*(?:map|set)\s*<\s*[^,<>]*\*)");
    static const std::regex todoDet(R"(TODO\s*\(\s*det\s*\))");
    static const std::regex wallClock(
        R"(\b(?:steady_clock|system_clock|high_resolution_clock)\b)");

    for (std::size_t i = 0; i < lines.code.size(); i++) {
        const std::string &code = lines.code[i];
        const std::string &raw = lines.raw[i];

        for (const std::string &name : unordered) {
            if (forLoopMentions(code, name)) {
                add(i, kUnorderedIteration);
                break;
            }
        }
        if (!inRngHome && hasRawRandom(code))
            add(i, kRawRandom);
        if (std::regex_search(code, pointerKey))
            add(i, kPointerKeyContainer);
        if (inExec &&
            code.find("memory_order_relaxed") != std::string::npos) {
            add(i, kRelaxedMemoryOrder);
        }
        if (!inClockHome && std::regex_search(code, wallClock))
            add(i, kWallClock);
        if (std::regex_search(raw, todoDet))
            add(i, kDetSuppression);
    }
    return findings;
}

bool
scanFile(const std::string &path, std::vector<Finding> &out,
         std::string *error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::vector<Finding> found = scanSource(path, buffer.str());
    out.insert(out.end(), found.begin(), found.end());
    return true;
}

std::vector<std::string>
collectSources(const std::string &path)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    std::error_code ec;
    if (fs::is_regular_file(path, ec)) {
        out.push_back(normalizePath(path));
        return out;
    }
    for (fs::recursive_directory_iterator
             it(path, fs::directory_options::skip_permission_denied,
                ec),
         end;
         it != end; it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file(ec))
            continue;
        std::string ext = it->path().extension().string();
        if (ext == ".cc" || ext == ".h")
            out.push_back(normalizePath(it->path().string()));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string
baselineKey(const Finding &finding)
{
    // Line numbers are deliberately excluded so unrelated edits above
    // a baselined finding do not resurrect it.
    return finding.rule + "|" + finding.file + "|" + finding.excerpt;
}

bool
loadBaseline(const std::string &path, std::set<std::string> &out,
             std::string *error)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::exists(path, ec))
        return true;  // no baseline: everything is a new finding
    std::ifstream in(path);
    if (!in) {
        if (error)
            *error = "cannot open baseline " + path;
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        out.insert(line);
    }
    return true;
}

std::string
renderBaseline(const std::vector<Finding> &findings)
{
    std::set<std::string> keys;
    for (const Finding &f : findings)
        keys.insert(baselineKey(f));
    std::ostringstream oss;
    oss << "# naspipe_lint baseline — pre-existing findings only.\n"
        << "# Regenerate with: naspipe_lint --write-baseline FILE "
           "PATH...\n"
        << "# New findings must be fixed or carry a reasoned\n"
        << "# `naspipe-lint: allow(rule)` comment, never added "
           "here.\n";
    for (const std::string &key : keys)
        oss << key << "\n";
    return oss.str();
}

std::size_t
applyBaseline(std::vector<Finding> &findings,
              const std::set<std::string> &baseline)
{
    std::size_t fresh = 0;
    for (Finding &f : findings) {
        f.baselined = baseline.count(baselineKey(f)) != 0;
        if (!f.baselined)
            fresh++;
    }
    return fresh;
}

} // namespace lint
} // namespace naspipe
