#include "lint_rules.h"

namespace naspipe {
namespace lint {

const std::vector<RuleInfo> &
ruleTable()
{
    static const std::vector<RuleInfo> kTable = [] {
        std::vector<RuleInfo> table;
        auto append = [&](const std::vector<RuleInfo> &rules) {
            table.insert(table.end(), rules.begin(), rules.end());
        };
        append(analysis::lineRuleTable());
        append(analysis::atomicsRuleTable());
        append(analysis::lockRuleTable());
        return table;
    }();
    return kTable;
}

std::vector<Finding>
scanSource(const std::string &path, const std::string &content)
{
    const SourceFile file = analysis::makeSourceFile(path, content);
    std::vector<Finding> findings = analysis::runLineRules(file);
    auto append = [&](std::vector<Finding> more) {
        findings.insert(findings.end(),
                        std::make_move_iterator(more.begin()),
                        std::make_move_iterator(more.end()));
    };
    append(analysis::runAtomicsPass(file));
    append(analysis::runRawMutexRule(file));
    return findings;
}

bool
scanFile(const std::string &path, std::vector<Finding> &out,
         std::string *error)
{
    SourceFile file;
    if (!analysis::loadSourceFile(path, file, error))
        return false;
    std::vector<Finding> found = analysis::runLineRules(file);
    auto append = [&](std::vector<Finding> more) {
        found.insert(found.end(),
                     std::make_move_iterator(more.begin()),
                     std::make_move_iterator(more.end()));
    };
    append(analysis::runAtomicsPass(file));
    append(analysis::runRawMutexRule(file));
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
    return true;
}

std::vector<Finding>
scanLockDiscipline(const std::vector<SourceFile> &files)
{
    analysis::LockRegistry registry;
    for (const SourceFile &file : files) {
        if (file.path.size() >= 18 &&
            file.path.compare(file.path.size() - 18, 18,
                              "common/lock_rank.h") == 0) {
            registry = analysis::LockRegistry::parse(file);
            break;
        }
    }
    return analysis::runLockPass(registry, files);
}

std::vector<std::string>
collectSources(const std::string &path)
{
    return analysis::collectSources(path);
}

std::string
baselineKey(const Finding &finding)
{
    return analysis::baselineKey(finding);
}

bool
loadBaseline(const std::string &path, std::set<std::string> &out,
             std::string *error)
{
    return analysis::loadBaseline(path, out, error);
}

std::string
renderBaseline(const std::vector<Finding> &findings)
{
    return analysis::renderBaseline(findings);
}

std::size_t
applyBaseline(std::vector<Finding> &findings,
              const std::set<std::string> &baseline)
{
    return analysis::applyBaseline(findings, baseline);
}

} // namespace lint
} // namespace naspipe
