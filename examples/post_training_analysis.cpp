/**
 * @file
 * Post-training analysis: the GreedyNAS-style debugging workflow the
 * paper motivates in §2.1 — "when an outstanding trial ... is
 * identified, post-training analysis is often needed to reason about
 * this trial". Train a trial, checkpoint its supernet, then — as a
 * later analysis session would — restore it and re-derive the
 * quality ranking of subnets, deterministically.
 */

#include <algorithm>
#include <cstdio>

#include "core/engine.h"
#include "train/convergence.h"

int
main()
{
    using namespace naspipe;

    SearchSpace space("trial-space", SpaceFamily::Cv, 16, 8, 77,
                      defaultSkipMass(SpaceFamily::Cv));
    const std::string checkpoint = "trial.ckpt";

    // --- The original trial. ---
    Engine::Options options;
    options.gpus = 8;
    options.steps = 96;
    options.seed = 1234;  // "the best hyperparameters and seed"
    Engine engine(space, options);
    RunResult trial = engine.train();
    if (trial.oom)
        return 1;
    std::printf("trial trained: %d subnets, loss %.4f, best SN%lld "
                "(top-5-like %.1f%%)\n",
                trial.metrics.finishedSubnets, trial.metrics.finalLoss,
                static_cast<long long>(trial.bestSubnet),
                trial.searchAccuracy);

    if (!trial.store->saveFile(checkpoint)) {
        std::printf("failed to write checkpoint\n");
        return 1;
    }
    std::printf("supernet checkpointed to %s (fingerprint %016llx)\n",
                checkpoint.c_str(),
                static_cast<unsigned long long>(trial.supernetHash));

    // --- A later analysis session: restore and inspect. ---
    ParameterStore restored(space, options.seed);
    if (!restored.loadFile(checkpoint)) {
        std::printf("failed to restore checkpoint\n");
        return 1;
    }
    std::printf("\nrestored store fingerprint:         %016llx (%s)\n",
                static_cast<unsigned long long>(
                    restored.supernetHash()),
                restored.supernetHash() == trial.supernetHash
                    ? "bitwise match"
                    : "MISMATCH");

    // Re-derive the subnet quality ranking from the restored
    // weights; the re-run is deterministic, so the inspection the
    // GreedyNAS authors had to repeat by hand replays exactly.
    NumericExecutor::Config config;
    config.dataSeed = deriveSeed(options.seed, "data");
    config.batch = trial.metrics.batch;
    NumericExecutor evaluator(restored, config);
    SearchResult search = searchBestSubnet(
        evaluator, trial.sampled, 90.0,
        deriveSeed(options.seed, "search"));

    std::printf("re-derived search winner:            SN%lld (%s)\n",
                static_cast<long long>(search.best.id()),
                search.best.id() == trial.bestSubnet
                    ? "matches the trial"
                    : "MISMATCH");

    // Print the quality ranking's head.
    std::vector<std::pair<double, SubnetId>> ranking;
    for (std::size_t i = 0; i < trial.sampled.size(); i++) {
        ranking.emplace_back(search.allEvalLosses[i],
                             trial.sampled[i].id());
    }
    std::sort(ranking.begin(), ranking.end());
    std::printf("\nquality ranking (held-out loss, top 5):\n");
    for (int i = 0; i < 5; i++) {
        std::printf("  %d. SN%-4lld loss %.5f\n", i + 1,
                    static_cast<long long>(
                        ranking[static_cast<std::size_t>(i)].second),
                    ranking[static_cast<std::size_t>(i)].first);
    }

    std::remove(checkpoint.c_str());
    std::printf("\nAny analysis session on any machine reproduces "
                "this ranking bit-for-bit from the checkpoint.\n");
    return 0;
}
