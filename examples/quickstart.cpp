/**
 * @file
 * Quickstart: build a search space, train it with NASPipe, inspect
 * the results. This is the 60-second tour of the public API.
 */

#include <cstdio>

#include "core/engine.h"
#include "common/string_util.h"

int
main()
{
    using namespace naspipe;

    // 1. Pick a search space. The seven spaces of the paper's
    //    evaluation are built-in; custom spaces take (name, family,
    //    #choice-blocks, #candidates-per-block, seed, skip mass).
    SearchSpace space = makeNlpC2();
    std::printf("search space %s: %d blocks x %d candidates, "
                "supernet %s, ~10^%.0f architectures\n",
                space.name().c_str(), space.numBlocks(),
                space.choicesPerBlock(),
                formatBytes(space.totalParamBytes()).c_str(),
                space.logCandidates());

    // 2. Configure the engine: how many GPUs the pipeline spans and
    //    how many subnets (one batch each) to train. Pinning the
    //    batch to one that fits every cluster size makes the run
    //    replayable on 4, 8 or 16 GPUs alike.
    Engine::Options options;
    options.gpus = 8;
    options.steps = 64;
    options.seed = 42;
    options.batch =
        Engine::commonBatch(space, naspipeSystem(), {4, 8, 16});
    Engine engine(space, options);

    // 3. Train with NASPipe (CSP scheduling + context prediction +
    //    layer mirroring).
    RunResult result = engine.train();
    if (result.oom) {
        std::printf("configuration does not fit in GPU memory\n");
        return 1;
    }

    // 4. Inspect what happened.
    std::printf("\n%s\n", result.metrics.summary().c_str());
    std::printf("batch size (auto-sized): %d samples\n",
                result.metrics.batch);
    std::printf("supernet loss:           %.4f\n",
                result.metrics.finalLoss);
    std::printf("best subnet found:       SN%lld (score %.2f)\n",
                static_cast<long long>(result.bestSubnet),
                result.searchAccuracy);
    std::printf("causal violations:       %d (CSP guarantees 0)\n",
                result.metrics.causalViolations);
    std::printf("weights fingerprint:     %016llx\n",
                static_cast<unsigned long long>(result.supernetHash));
    std::printf(
        "\nRe-run this program: every number above reproduces "
        "bit-for-bit.\nChange options.gpus: the fingerprint stays "
        "identical — that is CSP.\n");
    return 0;
}
