/**
 * @file
 * CV supernet training: SPOS-style uniform sampling over an
 * AmoebaNet-flavoured space, comparing all four training systems on
 * the same workload — the head-to-head a practitioner would run
 * before committing to a backend.
 */

#include <cstdio>

#include "core/engine.h"
#include "common/string_util.h"

int
main()
{
    using namespace naspipe;

    SearchSpace space = makeCvC2();  // 32 blocks x 24 candidates
    std::printf("workload: %s on %s (%d subnets of one batch each)\n\n",
                space.name().c_str(), space.dataset(), 96);

    Engine::Options options;
    options.gpus = 8;
    options.steps = 96;
    options.seed = 123;
    Engine engine(space, options);

    std::printf("%-12s %9s %7s %7s %7s %10s %s\n", "system",
                "samples/s", "batch", "bubble", "top-5", "violations",
                "reproducible?");
    for (const SystemModel &system :
         {naspipeSystem(), gpipeSystem(), pipedreamSystem(),
          vpipeSystem()}) {
        RunResult result = engine.trainWith(system);
        if (result.oom) {
            std::printf("%-12s OOM\n", system.name.c_str());
            continue;
        }
        std::printf("%-12s %9.1f %7d %7.2f %6.1f%% %10d %s\n",
                    system.name.c_str(),
                    result.metrics.samplesPerSec,
                    result.metrics.batch,
                    result.metrics.bubbleRatio,
                    result.searchAccuracy,
                    result.metrics.causalViolations,
                    system.preservesDependencies()
                        ? "yes (CSP)"
                        : "no");
    }

    std::printf(
        "\nTakeaway: the baselines trade away causal correctness "
        "(violations > 0) and still cannot match NASPipe's batch "
        "size; only the CSP run is reproducible on a different "
        "cluster.\n");
    return 0;
}
