/**
 * @file
 * Hybrid multi-space traversal (paper §5.5, Future Applications):
 * explore several search spaces *simultaneously* through one CSP
 * pipeline. Because subnets of different spaces share no layers, the
 * scheduler interleaves the streams freely — the dependency stalls
 * that throttle a single dense stream largely vanish, while every
 * stream's training remains bitwise reproducible.
 */

#include <cstdio>

#include "core/engine.h"
#include "runtime/pipeline_runtime.h"
#include "supernet/sampler.h"

int
main()
{
    using namespace naspipe;

    // One combined supernet; the hybrid sampler splits its blocks
    // into independent sub-spaces.
    SearchSpace space("hybrid-demo", SpaceFamily::Nlp, 48, 12, 31,
                      defaultSkipMass(SpaceFamily::Nlp));

    // One batch for every configuration, so comparisons (and the
    // cross-cluster replay below) share a trajectory.
    int batch =
        Engine::commonBatch(space, naspipeSystem(), {4, 8});

    auto runWith = [&space, batch](int streams, int gpus = 8) {
        RuntimeConfig config;
        config.system = naspipeSystem();
        config.numStages = gpus;
        config.totalSubnets = 96;
        config.seed = 9;
        config.batch = batch;
        config.hybridStreams = streams;
        return runTraining(space, config);
    };

    std::printf("traversing the same supernet as 1, 2 and 4 "
                "simultaneous search spaces (NASPipe, 8 GPUs):\n\n");
    std::printf("%8s %11s %8s %10s %12s %11s\n", "streams",
                "subnets/s", "bubble", "exec(s)", "dep stalls",
                "violations");
    for (int streams : {1, 2, 4}) {
        RunResult r = runWith(streams);
        if (r.oom)
            return 1;
        std::printf("%8d %11.2f %8.2f %10.2f %12llu %11d\n", streams,
                    r.metrics.subnetsPerHour / 3600.0,
                    r.metrics.bubbleRatio,
                    r.metrics.meanExecSeconds,
                    static_cast<unsigned long long>(
                        r.metrics.stallDependency),
                    r.metrics.causalViolations);
    }
    std::printf("\n(per-stream subnets are 1/streams the size, so "
                "compare the pipeline quality columns: bubble falls "
                "as streams stop colliding.)\n");

    std::printf(
        "\nMore simultaneous spaces => fewer chronologically-close "
        "shared layers => fewer CSP stalls, with causal correctness "
        "(violations = 0) intact in every configuration. This is the "
        "paper's 'hybrid traverse' application: the runtime holds any "
        "number of dependency relations at once.\n");

    // And the Definition 1 guarantee carries over unchanged: replay
    // the 4-stream traversal on a different cluster size with the
    // same batch.
    RunResult a = runWith(4, 8);
    RunResult onFour = runWith(4, 4);
    std::printf("\nhybrid traversal reproducibility, 8 vs 4 GPUs: %s\n",
                !onFour.oom && onFour.supernetHash == a.supernetHash
                    ? "bitwise MATCH"
                    : "mismatch");
    return 0;
}
