/**
 * @file
 * Reproducible replay: train a supernet on a 4-GPU pipeline, then
 * replay the same training on 8 and 16 GPUs and verify Definition 1
 * — bitwise-identical weights, losses and search result — while the
 * *schedules* (and wall-clock) legitimately differ. This is the
 * debugging workflow the paper motivates: reproduce any trial on
 * whatever cluster you can afford.
 */

#include <cstdio>

#include "core/engine.h"
#include "runtime/replay.h"

int
main()
{
    using namespace naspipe;

    SearchSpace space("replay-demo", SpaceFamily::Nlp, 24, 8, 99,
                      0.3);
    Engine::Options options;
    options.steps = 48;
    options.seed = 2024;
    options.trace = true;
    // Pin the batch so every cluster size trains the exact same
    // trajectory (the paper's cross-cluster methodology).
    options.batch =
        Engine::commonBatch(space, naspipeSystem(), {4, 8, 16});

    std::printf("training on 4 GPUs (the 'original trial')...\n");
    options.gpus = 4;
    RunResult original = Engine(space, options).train();
    if (original.oom)
        return 1;
    std::printf("  %.1fs simulated, loss %.4f, best SN%lld, "
                "weights %016llx\n",
                original.metrics.simSeconds,
                original.metrics.finalLoss,
                static_cast<long long>(original.bestSubnet),
                static_cast<unsigned long long>(
                    original.supernetHash));

    for (int gpus : {8, 16}) {
        std::printf("\nreplaying on %d GPUs...\n", gpus);
        options.gpus = gpus;
        RunResult replay = Engine(space, options).train();
        RunComparison cmp = compareRuns(original, replay);

        std::printf("  %.1fs simulated (%.1fx faster wall-clock)\n",
                    replay.metrics.simSeconds,
                    original.metrics.simSeconds /
                        replay.metrics.simSeconds);
        std::printf("  schedule hash: %016llx vs original %016llx "
                    "(schedules %s)\n",
                    static_cast<unsigned long long>(
                        ScheduleSignature(*replay.trace).hash()),
                    static_cast<unsigned long long>(
                        ScheduleSignature(*original.trace).hash()),
                    ScheduleSignature(*replay.trace).hash() ==
                            ScheduleSignature(*original.trace).hash()
                        ? "identical"
                        : "differ, as expected");
        std::printf("  outcome: %s\n",
                    describeComparison(cmp).c_str());
        if (!cmp.reproducible()) {
            std::printf("REPRODUCIBILITY VIOLATED\n");
            return 1;
        }
    }

    std::printf("\nEvery replay produced bitwise-identical training "
                "results: the trial can be debugged on any cluster "
                "size.\n");
    return 0;
}
