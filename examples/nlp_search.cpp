/**
 * @file
 * NLP architecture search: evolution-guided exploration of an
 * Evolved-Transformer-style space (the paper's default search
 * strategy, §5) with NASPipe as the training backend, followed by
 * the post-training search over all trained candidates.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "common/string_util.h"

int
main()
{
    using namespace naspipe;

    // An Evolved-Transformer-flavoured space: 24 choice blocks, 16
    // candidates each (plus the skip candidate for variable depth).
    SearchSpace space("ET-mini", SpaceFamily::Nlp, 24, 16, 2026,
                      defaultSkipMass(SpaceFamily::Nlp));
    std::printf("exploring %s: ~10^%.0f candidate architectures\n",
                space.name().c_str(), space.logCandidates());

    Engine::Options options;
    options.gpus = 8;
    options.steps = 128;
    options.seed = 7;
    options.evolutionSearch = true;  // aging evolution (Real et al.)
    Engine engine(space, options);

    RunResult result = engine.train();
    if (result.oom) {
        std::printf("space does not fit; shrink it or add GPUs\n");
        return 1;
    }

    std::printf("\ntrained %d subnets in %.1f simulated seconds "
                "(%.0f samples/s, bubble %.2f, cache %s)\n",
                result.metrics.finishedSubnets,
                result.metrics.simSeconds,
                result.metrics.samplesPerSec,
                result.metrics.bubbleRatio,
                formatCacheHitRate(result.metrics.cacheHitRate)
                    .c_str());

    // Rank the explored subnets by their training loss to see what
    // evolution converged towards.
    std::vector<std::pair<float, SubnetId>> ranked;
    for (const auto &[id, loss] : result.losses)
        ranked.emplace_back(loss, id);
    std::sort(ranked.begin(), ranked.end());

    std::printf("\ntop 5 subnets by training loss:\n");
    for (int i = 0; i < 5 && i < static_cast<int>(ranked.size());
         i++) {
        const Subnet &sn = result.sampled[static_cast<std::size_t>(
            ranked[static_cast<std::size_t>(i)].second)];
        std::printf("  %d. loss %.4f  %s\n", i + 1,
                    ranked[static_cast<std::size_t>(i)].first,
                    sn.toString().c_str());
    }

    std::printf("\nsearch winner (held-out evaluation): SN%lld, "
                "BLEU-like score %.2f\n",
                static_cast<long long>(result.bestSubnet),
                result.searchAccuracy);

    // Evolution should concentrate probability mass: late subnets
    // ought to beat early ones on average.
    double earlyMean = 0, lateMean = 0;
    int half = static_cast<int>(result.sampled.size()) / 2;
    for (int i = 0; i < half; i++) {
        earlyMean += result.losses.at(i);
        lateMean += result.losses.at(half + i);
    }
    std::printf("\nmean loss, first half of exploration: %.4f\n",
                earlyMean / half);
    std::printf("mean loss, second half of exploration: %.4f\n",
                lateMean / half);
    return 0;
}
