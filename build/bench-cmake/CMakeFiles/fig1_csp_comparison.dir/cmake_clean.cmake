file(REMOVE_RECURSE
  "../bench/fig1_csp_comparison"
  "../bench/fig1_csp_comparison.pdb"
  "CMakeFiles/fig1_csp_comparison.dir/fig1_csp_comparison.cc.o"
  "CMakeFiles/fig1_csp_comparison.dir/fig1_csp_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_csp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
