# Empty compiler generated dependencies file for fig1_csp_comparison.
# This may be replaced when dependencies are built.
