# Empty compiler generated dependencies file for table5_layer_profile.
# This may be replaced when dependencies are built.
