file(REMOVE_RECURSE
  "../bench/table5_layer_profile"
  "../bench/table5_layer_profile.pdb"
  "CMakeFiles/table5_layer_profile.dir/table5_layer_profile.cc.o"
  "CMakeFiles/table5_layer_profile.dir/table5_layer_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_layer_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
