# Empty compiler generated dependencies file for appendix_repro_500steps.
# This may be replaced when dependencies are built.
