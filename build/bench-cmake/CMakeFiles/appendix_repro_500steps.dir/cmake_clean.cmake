file(REMOVE_RECURSE
  "../bench/appendix_repro_500steps"
  "../bench/appendix_repro_500steps.pdb"
  "CMakeFiles/appendix_repro_500steps.dir/appendix_repro_500steps.cc.o"
  "CMakeFiles/appendix_repro_500steps.dir/appendix_repro_500steps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_repro_500steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
