# Empty compiler generated dependencies file for ablation_depth_density.
# This may be replaced when dependencies are built.
