file(REMOVE_RECURSE
  "../bench/ablation_depth_density"
  "../bench/ablation_depth_density.pdb"
  "CMakeFiles/ablation_depth_density.dir/ablation_depth_density.cc.o"
  "CMakeFiles/ablation_depth_density.dir/ablation_depth_density.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_depth_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
