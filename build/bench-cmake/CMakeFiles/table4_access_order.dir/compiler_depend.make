# Empty compiler generated dependencies file for table4_access_order.
# This may be replaced when dependencies are built.
