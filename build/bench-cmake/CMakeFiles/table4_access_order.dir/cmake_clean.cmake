file(REMOVE_RECURSE
  "../bench/table4_access_order"
  "../bench/table4_access_order.pdb"
  "CMakeFiles/table4_access_order.dir/table4_access_order.cc.o"
  "CMakeFiles/table4_access_order.dir/table4_access_order.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_access_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
