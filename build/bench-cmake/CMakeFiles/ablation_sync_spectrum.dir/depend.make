# Empty dependencies file for ablation_sync_spectrum.
# This may be replaced when dependencies are built.
