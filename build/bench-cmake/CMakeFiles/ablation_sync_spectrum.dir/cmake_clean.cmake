file(REMOVE_RECURSE
  "../bench/ablation_sync_spectrum"
  "../bench/ablation_sync_spectrum.pdb"
  "CMakeFiles/ablation_sync_spectrum.dir/ablation_sync_spectrum.cc.o"
  "CMakeFiles/ablation_sync_spectrum.dir/ablation_sync_spectrum.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
