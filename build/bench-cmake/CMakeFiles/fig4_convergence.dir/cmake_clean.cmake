file(REMOVE_RECURSE
  "../bench/fig4_convergence"
  "../bench/fig4_convergence.pdb"
  "CMakeFiles/fig4_convergence.dir/fig4_convergence.cc.o"
  "CMakeFiles/fig4_convergence.dir/fig4_convergence.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
