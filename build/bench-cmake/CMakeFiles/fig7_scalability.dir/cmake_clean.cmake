file(REMOVE_RECURSE
  "../bench/fig7_scalability"
  "../bench/fig7_scalability.pdb"
  "CMakeFiles/fig7_scalability.dir/fig7_scalability.cc.o"
  "CMakeFiles/fig7_scalability.dir/fig7_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
