file(REMOVE_RECURSE
  "../bench/table1_search_spaces"
  "../bench/table1_search_spaces.pdb"
  "CMakeFiles/table1_search_spaces.dir/table1_search_spaces.cc.o"
  "CMakeFiles/table1_search_spaces.dir/table1_search_spaces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_search_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
