# Empty compiler generated dependencies file for table1_search_spaces.
# This may be replaced when dependencies are built.
