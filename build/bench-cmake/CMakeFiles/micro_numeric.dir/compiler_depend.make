# Empty compiler generated dependencies file for micro_numeric.
# This may be replaced when dependencies are built.
