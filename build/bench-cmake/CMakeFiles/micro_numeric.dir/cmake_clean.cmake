file(REMOVE_RECURSE
  "../bench/micro_numeric"
  "../bench/micro_numeric.pdb"
  "CMakeFiles/micro_numeric.dir/micro_numeric.cc.o"
  "CMakeFiles/micro_numeric.dir/micro_numeric.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
