file(REMOVE_RECURSE
  "../bench/table3_reproducibility"
  "../bench/table3_reproducibility.pdb"
  "CMakeFiles/table3_reproducibility.dir/table3_reproducibility.cc.o"
  "CMakeFiles/table3_reproducibility.dir/table3_reproducibility.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_reproducibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
