# Empty dependencies file for table3_reproducibility.
# This may be replaced when dependencies are built.
