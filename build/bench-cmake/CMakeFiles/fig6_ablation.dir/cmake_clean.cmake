file(REMOVE_RECURSE
  "../bench/fig6_ablation"
  "../bench/fig6_ablation.pdb"
  "CMakeFiles/fig6_ablation.dir/fig6_ablation.cc.o"
  "CMakeFiles/fig6_ablation.dir/fig6_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
