# Empty dependencies file for naspipe_cli.
# This may be replaced when dependencies are built.
