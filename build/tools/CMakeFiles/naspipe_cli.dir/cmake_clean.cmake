file(REMOVE_RECURSE
  "CMakeFiles/naspipe_cli.dir/naspipe_cli.cc.o"
  "CMakeFiles/naspipe_cli.dir/naspipe_cli.cc.o.d"
  "naspipe_cli"
  "naspipe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naspipe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
