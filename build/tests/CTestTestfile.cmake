# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hw "/root/repo/build/tests/test_hw")
set_tests_properties(test_hw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;24;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_supernet "/root/repo/build/tests/test_supernet")
set_tests_properties(test_supernet PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;30;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;39;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/tests/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;43;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_partition "/root/repo/build/tests/test_partition")
set_tests_properties(test_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;51;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_schedule "/root/repo/build/tests/test_schedule")
set_tests_properties(test_schedule PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;57;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memory "/root/repo/build/tests/test_memory")
set_tests_properties(test_memory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;68;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_train "/root/repo/build/tests/test_train")
set_tests_properties(test_train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;75;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime_extra "/root/repo/build/tests/test_runtime_extra")
set_tests_properties(test_runtime_extra PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;82;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;89;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;96;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;103;naspipe_test;/root/repo/tests/CMakeLists.txt;0;")
