
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cc.o.d"
  "/root/repo/tests/integration/test_extensions.cc" "tests/CMakeFiles/test_integration.dir/integration/test_extensions.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_extensions.cc.o.d"
  "/root/repo/tests/integration/test_reproducibility.cc" "tests/CMakeFiles/test_integration.dir/integration/test_reproducibility.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_reproducibility.cc.o.d"
  "/root/repo/tests/integration/test_systems.cc" "tests/CMakeFiles/test_integration.dir/integration/test_systems.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_systems.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/naspipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
