file(REMOVE_RECURSE
  "CMakeFiles/test_schedule.dir/schedule/test_bsp.cc.o"
  "CMakeFiles/test_schedule.dir/schedule/test_bsp.cc.o.d"
  "CMakeFiles/test_schedule.dir/schedule/test_csp.cc.o"
  "CMakeFiles/test_schedule.dir/schedule/test_csp.cc.o.d"
  "CMakeFiles/test_schedule.dir/schedule/test_dependency.cc.o"
  "CMakeFiles/test_schedule.dir/schedule/test_dependency.cc.o.d"
  "CMakeFiles/test_schedule.dir/schedule/test_predictor.cc.o"
  "CMakeFiles/test_schedule.dir/schedule/test_predictor.cc.o.d"
  "CMakeFiles/test_schedule.dir/schedule/test_scheduler.cc.o"
  "CMakeFiles/test_schedule.dir/schedule/test_scheduler.cc.o.d"
  "CMakeFiles/test_schedule.dir/schedule/test_ssp.cc.o"
  "CMakeFiles/test_schedule.dir/schedule/test_ssp.cc.o.d"
  "CMakeFiles/test_schedule.dir/schedule/test_task.cc.o"
  "CMakeFiles/test_schedule.dir/schedule/test_task.cc.o.d"
  "CMakeFiles/test_schedule.dir/schedule/test_weight_stash.cc.o"
  "CMakeFiles/test_schedule.dir/schedule/test_weight_stash.cc.o.d"
  "test_schedule"
  "test_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
