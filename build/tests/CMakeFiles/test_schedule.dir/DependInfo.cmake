
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/schedule/test_bsp.cc" "tests/CMakeFiles/test_schedule.dir/schedule/test_bsp.cc.o" "gcc" "tests/CMakeFiles/test_schedule.dir/schedule/test_bsp.cc.o.d"
  "/root/repo/tests/schedule/test_csp.cc" "tests/CMakeFiles/test_schedule.dir/schedule/test_csp.cc.o" "gcc" "tests/CMakeFiles/test_schedule.dir/schedule/test_csp.cc.o.d"
  "/root/repo/tests/schedule/test_dependency.cc" "tests/CMakeFiles/test_schedule.dir/schedule/test_dependency.cc.o" "gcc" "tests/CMakeFiles/test_schedule.dir/schedule/test_dependency.cc.o.d"
  "/root/repo/tests/schedule/test_predictor.cc" "tests/CMakeFiles/test_schedule.dir/schedule/test_predictor.cc.o" "gcc" "tests/CMakeFiles/test_schedule.dir/schedule/test_predictor.cc.o.d"
  "/root/repo/tests/schedule/test_scheduler.cc" "tests/CMakeFiles/test_schedule.dir/schedule/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/test_schedule.dir/schedule/test_scheduler.cc.o.d"
  "/root/repo/tests/schedule/test_ssp.cc" "tests/CMakeFiles/test_schedule.dir/schedule/test_ssp.cc.o" "gcc" "tests/CMakeFiles/test_schedule.dir/schedule/test_ssp.cc.o.d"
  "/root/repo/tests/schedule/test_task.cc" "tests/CMakeFiles/test_schedule.dir/schedule/test_task.cc.o" "gcc" "tests/CMakeFiles/test_schedule.dir/schedule/test_task.cc.o.d"
  "/root/repo/tests/schedule/test_weight_stash.cc" "tests/CMakeFiles/test_schedule.dir/schedule/test_weight_stash.cc.o" "gcc" "tests/CMakeFiles/test_schedule.dir/schedule/test_weight_stash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/naspipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
