
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/supernet/test_layer.cc" "tests/CMakeFiles/test_supernet.dir/supernet/test_layer.cc.o" "gcc" "tests/CMakeFiles/test_supernet.dir/supernet/test_layer.cc.o.d"
  "/root/repo/tests/supernet/test_profile.cc" "tests/CMakeFiles/test_supernet.dir/supernet/test_profile.cc.o" "gcc" "tests/CMakeFiles/test_supernet.dir/supernet/test_profile.cc.o.d"
  "/root/repo/tests/supernet/test_sampler.cc" "tests/CMakeFiles/test_supernet.dir/supernet/test_sampler.cc.o" "gcc" "tests/CMakeFiles/test_supernet.dir/supernet/test_sampler.cc.o.d"
  "/root/repo/tests/supernet/test_search_space.cc" "tests/CMakeFiles/test_supernet.dir/supernet/test_search_space.cc.o" "gcc" "tests/CMakeFiles/test_supernet.dir/supernet/test_search_space.cc.o.d"
  "/root/repo/tests/supernet/test_subnet.cc" "tests/CMakeFiles/test_supernet.dir/supernet/test_subnet.cc.o" "gcc" "tests/CMakeFiles/test_supernet.dir/supernet/test_subnet.cc.o.d"
  "/root/repo/tests/supernet/test_supernet.cc" "tests/CMakeFiles/test_supernet.dir/supernet/test_supernet.cc.o" "gcc" "tests/CMakeFiles/test_supernet.dir/supernet/test_supernet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/naspipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
