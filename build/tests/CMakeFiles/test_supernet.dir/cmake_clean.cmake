file(REMOVE_RECURSE
  "CMakeFiles/test_supernet.dir/supernet/test_layer.cc.o"
  "CMakeFiles/test_supernet.dir/supernet/test_layer.cc.o.d"
  "CMakeFiles/test_supernet.dir/supernet/test_profile.cc.o"
  "CMakeFiles/test_supernet.dir/supernet/test_profile.cc.o.d"
  "CMakeFiles/test_supernet.dir/supernet/test_sampler.cc.o"
  "CMakeFiles/test_supernet.dir/supernet/test_sampler.cc.o.d"
  "CMakeFiles/test_supernet.dir/supernet/test_search_space.cc.o"
  "CMakeFiles/test_supernet.dir/supernet/test_search_space.cc.o.d"
  "CMakeFiles/test_supernet.dir/supernet/test_subnet.cc.o"
  "CMakeFiles/test_supernet.dir/supernet/test_subnet.cc.o.d"
  "CMakeFiles/test_supernet.dir/supernet/test_supernet.cc.o"
  "CMakeFiles/test_supernet.dir/supernet/test_supernet.cc.o.d"
  "test_supernet"
  "test_supernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_supernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
