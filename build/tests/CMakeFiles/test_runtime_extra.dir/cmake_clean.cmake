file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_extra.dir/runtime/test_metrics.cc.o"
  "CMakeFiles/test_runtime_extra.dir/runtime/test_metrics.cc.o.d"
  "CMakeFiles/test_runtime_extra.dir/runtime/test_replay.cc.o"
  "CMakeFiles/test_runtime_extra.dir/runtime/test_replay.cc.o.d"
  "CMakeFiles/test_runtime_extra.dir/runtime/test_schedules.cc.o"
  "CMakeFiles/test_runtime_extra.dir/runtime/test_schedules.cc.o.d"
  "CMakeFiles/test_runtime_extra.dir/runtime/test_stage.cc.o"
  "CMakeFiles/test_runtime_extra.dir/runtime/test_stage.cc.o.d"
  "test_runtime_extra"
  "test_runtime_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
