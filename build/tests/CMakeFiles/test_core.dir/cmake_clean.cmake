file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_engine.cc.o"
  "CMakeFiles/test_core.dir/core/test_engine.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_experiment.cc.o"
  "CMakeFiles/test_core.dir/core/test_experiment.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cc.o"
  "CMakeFiles/test_core.dir/core/test_report.cc.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
