
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/train/test_access_log.cc" "tests/CMakeFiles/test_train.dir/train/test_access_log.cc.o" "gcc" "tests/CMakeFiles/test_train.dir/train/test_access_log.cc.o.d"
  "/root/repo/tests/train/test_convergence.cc" "tests/CMakeFiles/test_train.dir/train/test_convergence.cc.o" "gcc" "tests/CMakeFiles/test_train.dir/train/test_convergence.cc.o.d"
  "/root/repo/tests/train/test_numeric_executor.cc" "tests/CMakeFiles/test_train.dir/train/test_numeric_executor.cc.o" "gcc" "tests/CMakeFiles/test_train.dir/train/test_numeric_executor.cc.o.d"
  "/root/repo/tests/train/test_param_store.cc" "tests/CMakeFiles/test_train.dir/train/test_param_store.cc.o" "gcc" "tests/CMakeFiles/test_train.dir/train/test_param_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/naspipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
