file(REMOVE_RECURSE
  "CMakeFiles/test_train.dir/train/test_access_log.cc.o"
  "CMakeFiles/test_train.dir/train/test_access_log.cc.o.d"
  "CMakeFiles/test_train.dir/train/test_convergence.cc.o"
  "CMakeFiles/test_train.dir/train/test_convergence.cc.o.d"
  "CMakeFiles/test_train.dir/train/test_numeric_executor.cc.o"
  "CMakeFiles/test_train.dir/train/test_numeric_executor.cc.o.d"
  "CMakeFiles/test_train.dir/train/test_param_store.cc.o"
  "CMakeFiles/test_train.dir/train/test_param_store.cc.o.d"
  "test_train"
  "test_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
