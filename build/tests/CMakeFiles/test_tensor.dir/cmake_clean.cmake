file(REMOVE_RECURSE
  "CMakeFiles/test_tensor.dir/tensor/test_layer_math.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_layer_math.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_loss.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_loss.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_ops.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_ops.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_sgd.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_sgd.cc.o.d"
  "CMakeFiles/test_tensor.dir/tensor/test_tensor.cc.o"
  "CMakeFiles/test_tensor.dir/tensor/test_tensor.cc.o.d"
  "test_tensor"
  "test_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
