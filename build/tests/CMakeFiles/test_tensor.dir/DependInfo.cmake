
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor/test_layer_math.cc" "tests/CMakeFiles/test_tensor.dir/tensor/test_layer_math.cc.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_layer_math.cc.o.d"
  "/root/repo/tests/tensor/test_loss.cc" "tests/CMakeFiles/test_tensor.dir/tensor/test_loss.cc.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_loss.cc.o.d"
  "/root/repo/tests/tensor/test_ops.cc" "tests/CMakeFiles/test_tensor.dir/tensor/test_ops.cc.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_ops.cc.o.d"
  "/root/repo/tests/tensor/test_sgd.cc" "tests/CMakeFiles/test_tensor.dir/tensor/test_sgd.cc.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_sgd.cc.o.d"
  "/root/repo/tests/tensor/test_tensor.cc" "tests/CMakeFiles/test_tensor.dir/tensor/test_tensor.cc.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/test_tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/naspipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
