
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memory/test_capacity.cc" "tests/CMakeFiles/test_memory.dir/memory/test_capacity.cc.o" "gcc" "tests/CMakeFiles/test_memory.dir/memory/test_capacity.cc.o.d"
  "/root/repo/tests/memory/test_context_manager.cc" "tests/CMakeFiles/test_memory.dir/memory/test_context_manager.cc.o" "gcc" "tests/CMakeFiles/test_memory.dir/memory/test_context_manager.cc.o.d"
  "/root/repo/tests/memory/test_gpu_memory.cc" "tests/CMakeFiles/test_memory.dir/memory/test_gpu_memory.cc.o" "gcc" "tests/CMakeFiles/test_memory.dir/memory/test_gpu_memory.cc.o.d"
  "/root/repo/tests/memory/test_swap_model.cc" "tests/CMakeFiles/test_memory.dir/memory/test_swap_model.cc.o" "gcc" "tests/CMakeFiles/test_memory.dir/memory/test_swap_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/naspipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
