file(REMOVE_RECURSE
  "CMakeFiles/test_memory.dir/memory/test_capacity.cc.o"
  "CMakeFiles/test_memory.dir/memory/test_capacity.cc.o.d"
  "CMakeFiles/test_memory.dir/memory/test_context_manager.cc.o"
  "CMakeFiles/test_memory.dir/memory/test_context_manager.cc.o.d"
  "CMakeFiles/test_memory.dir/memory/test_gpu_memory.cc.o"
  "CMakeFiles/test_memory.dir/memory/test_gpu_memory.cc.o.d"
  "CMakeFiles/test_memory.dir/memory/test_swap_model.cc.o"
  "CMakeFiles/test_memory.dir/memory/test_swap_model.cc.o.d"
  "test_memory"
  "test_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
