file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/test_cluster.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_cluster.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_gpu.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_gpu.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_interconnect.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_interconnect.cc.o.d"
  "test_hw"
  "test_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
