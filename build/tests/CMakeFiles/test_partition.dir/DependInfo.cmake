
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/partition/test_mirror.cc" "tests/CMakeFiles/test_partition.dir/partition/test_mirror.cc.o" "gcc" "tests/CMakeFiles/test_partition.dir/partition/test_mirror.cc.o.d"
  "/root/repo/tests/partition/test_partitioner.cc" "tests/CMakeFiles/test_partition.dir/partition/test_partitioner.cc.o" "gcc" "tests/CMakeFiles/test_partition.dir/partition/test_partitioner.cc.o.d"
  "/root/repo/tests/partition/test_placement.cc" "tests/CMakeFiles/test_partition.dir/partition/test_placement.cc.o" "gcc" "tests/CMakeFiles/test_partition.dir/partition/test_placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/naspipe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
