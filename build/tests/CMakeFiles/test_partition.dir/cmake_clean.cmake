file(REMOVE_RECURSE
  "CMakeFiles/test_partition.dir/partition/test_mirror.cc.o"
  "CMakeFiles/test_partition.dir/partition/test_mirror.cc.o.d"
  "CMakeFiles/test_partition.dir/partition/test_partitioner.cc.o"
  "CMakeFiles/test_partition.dir/partition/test_partitioner.cc.o.d"
  "CMakeFiles/test_partition.dir/partition/test_placement.cc.o"
  "CMakeFiles/test_partition.dir/partition/test_placement.cc.o.d"
  "test_partition"
  "test_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
