file(REMOVE_RECURSE
  "libnaspipe.a"
)
