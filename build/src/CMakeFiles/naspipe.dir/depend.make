# Empty dependencies file for naspipe.
# This may be replaced when dependencies are built.
