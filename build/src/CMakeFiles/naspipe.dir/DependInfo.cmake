
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/naspipe.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/common/csv.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/naspipe.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/naspipe.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/naspipe.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/common/stats.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/naspipe.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/naspipe.dir/common/table.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/common/table.cc.o.d"
  "/root/repo/src/core/ablation.cc" "src/CMakeFiles/naspipe.dir/core/ablation.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/core/ablation.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/naspipe.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/core/engine.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/naspipe.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/naspipe.dir/core/report.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/core/report.cc.o.d"
  "/root/repo/src/hw/cluster.cc" "src/CMakeFiles/naspipe.dir/hw/cluster.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/hw/cluster.cc.o.d"
  "/root/repo/src/hw/gpu.cc" "src/CMakeFiles/naspipe.dir/hw/gpu.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/hw/gpu.cc.o.d"
  "/root/repo/src/hw/interconnect.cc" "src/CMakeFiles/naspipe.dir/hw/interconnect.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/hw/interconnect.cc.o.d"
  "/root/repo/src/memory/context_manager.cc" "src/CMakeFiles/naspipe.dir/memory/context_manager.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/memory/context_manager.cc.o.d"
  "/root/repo/src/memory/gpu_memory.cc" "src/CMakeFiles/naspipe.dir/memory/gpu_memory.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/memory/gpu_memory.cc.o.d"
  "/root/repo/src/memory/swap_model.cc" "src/CMakeFiles/naspipe.dir/memory/swap_model.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/memory/swap_model.cc.o.d"
  "/root/repo/src/partition/mirror.cc" "src/CMakeFiles/naspipe.dir/partition/mirror.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/partition/mirror.cc.o.d"
  "/root/repo/src/partition/partitioner.cc" "src/CMakeFiles/naspipe.dir/partition/partitioner.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/partition/partitioner.cc.o.d"
  "/root/repo/src/partition/placement.cc" "src/CMakeFiles/naspipe.dir/partition/placement.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/partition/placement.cc.o.d"
  "/root/repo/src/runtime/messages.cc" "src/CMakeFiles/naspipe.dir/runtime/messages.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/runtime/messages.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "src/CMakeFiles/naspipe.dir/runtime/metrics.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/runtime/metrics.cc.o.d"
  "/root/repo/src/runtime/pipeline_runtime.cc" "src/CMakeFiles/naspipe.dir/runtime/pipeline_runtime.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/runtime/pipeline_runtime.cc.o.d"
  "/root/repo/src/runtime/replay.cc" "src/CMakeFiles/naspipe.dir/runtime/replay.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/runtime/replay.cc.o.d"
  "/root/repo/src/runtime/stage.cc" "src/CMakeFiles/naspipe.dir/runtime/stage.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/runtime/stage.cc.o.d"
  "/root/repo/src/schedule/asp_scheduler.cc" "src/CMakeFiles/naspipe.dir/schedule/asp_scheduler.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/asp_scheduler.cc.o.d"
  "/root/repo/src/schedule/bsp_scheduler.cc" "src/CMakeFiles/naspipe.dir/schedule/bsp_scheduler.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/bsp_scheduler.cc.o.d"
  "/root/repo/src/schedule/csp_scheduler.cc" "src/CMakeFiles/naspipe.dir/schedule/csp_scheduler.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/csp_scheduler.cc.o.d"
  "/root/repo/src/schedule/dependency.cc" "src/CMakeFiles/naspipe.dir/schedule/dependency.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/dependency.cc.o.d"
  "/root/repo/src/schedule/predictor.cc" "src/CMakeFiles/naspipe.dir/schedule/predictor.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/predictor.cc.o.d"
  "/root/repo/src/schedule/scheduler.cc" "src/CMakeFiles/naspipe.dir/schedule/scheduler.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/scheduler.cc.o.d"
  "/root/repo/src/schedule/ssp_scheduler.cc" "src/CMakeFiles/naspipe.dir/schedule/ssp_scheduler.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/ssp_scheduler.cc.o.d"
  "/root/repo/src/schedule/task.cc" "src/CMakeFiles/naspipe.dir/schedule/task.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/task.cc.o.d"
  "/root/repo/src/schedule/vpipe_scheduler.cc" "src/CMakeFiles/naspipe.dir/schedule/vpipe_scheduler.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/schedule/vpipe_scheduler.cc.o.d"
  "/root/repo/src/sim/event.cc" "src/CMakeFiles/naspipe.dir/sim/event.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/sim/event.cc.o.d"
  "/root/repo/src/sim/fault_injector.cc" "src/CMakeFiles/naspipe.dir/sim/fault_injector.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/sim/fault_injector.cc.o.d"
  "/root/repo/src/sim/resource.cc" "src/CMakeFiles/naspipe.dir/sim/resource.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/sim/resource.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/naspipe.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/naspipe.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/sim/trace.cc.o.d"
  "/root/repo/src/supernet/layer.cc" "src/CMakeFiles/naspipe.dir/supernet/layer.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/supernet/layer.cc.o.d"
  "/root/repo/src/supernet/profile.cc" "src/CMakeFiles/naspipe.dir/supernet/profile.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/supernet/profile.cc.o.d"
  "/root/repo/src/supernet/sampler.cc" "src/CMakeFiles/naspipe.dir/supernet/sampler.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/supernet/sampler.cc.o.d"
  "/root/repo/src/supernet/search_space.cc" "src/CMakeFiles/naspipe.dir/supernet/search_space.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/supernet/search_space.cc.o.d"
  "/root/repo/src/supernet/subnet.cc" "src/CMakeFiles/naspipe.dir/supernet/subnet.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/supernet/subnet.cc.o.d"
  "/root/repo/src/supernet/supernet.cc" "src/CMakeFiles/naspipe.dir/supernet/supernet.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/supernet/supernet.cc.o.d"
  "/root/repo/src/tensor/layer_math.cc" "src/CMakeFiles/naspipe.dir/tensor/layer_math.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/tensor/layer_math.cc.o.d"
  "/root/repo/src/tensor/loss.cc" "src/CMakeFiles/naspipe.dir/tensor/loss.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/tensor/loss.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/naspipe.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/sgd.cc" "src/CMakeFiles/naspipe.dir/tensor/sgd.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/tensor/sgd.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/naspipe.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/train/access_log.cc" "src/CMakeFiles/naspipe.dir/train/access_log.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/train/access_log.cc.o.d"
  "/root/repo/src/train/convergence.cc" "src/CMakeFiles/naspipe.dir/train/convergence.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/train/convergence.cc.o.d"
  "/root/repo/src/train/numeric_executor.cc" "src/CMakeFiles/naspipe.dir/train/numeric_executor.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/train/numeric_executor.cc.o.d"
  "/root/repo/src/train/param_store.cc" "src/CMakeFiles/naspipe.dir/train/param_store.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/train/param_store.cc.o.d"
  "/root/repo/src/train/run_checkpoint.cc" "src/CMakeFiles/naspipe.dir/train/run_checkpoint.cc.o" "gcc" "src/CMakeFiles/naspipe.dir/train/run_checkpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
