# Empty dependencies file for reproducible_replay.
# This may be replaced when dependencies are built.
