file(REMOVE_RECURSE
  "CMakeFiles/reproducible_replay.dir/reproducible_replay.cpp.o"
  "CMakeFiles/reproducible_replay.dir/reproducible_replay.cpp.o.d"
  "reproducible_replay"
  "reproducible_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproducible_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
