file(REMOVE_RECURSE
  "CMakeFiles/post_training_analysis.dir/post_training_analysis.cpp.o"
  "CMakeFiles/post_training_analysis.dir/post_training_analysis.cpp.o.d"
  "post_training_analysis"
  "post_training_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/post_training_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
