# Empty dependencies file for post_training_analysis.
# This may be replaced when dependencies are built.
