file(REMOVE_RECURSE
  "CMakeFiles/hybrid_search.dir/hybrid_search.cpp.o"
  "CMakeFiles/hybrid_search.dir/hybrid_search.cpp.o.d"
  "hybrid_search"
  "hybrid_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
