# Empty dependencies file for hybrid_search.
# This may be replaced when dependencies are built.
