file(REMOVE_RECURSE
  "CMakeFiles/nlp_search.dir/nlp_search.cpp.o"
  "CMakeFiles/nlp_search.dir/nlp_search.cpp.o.d"
  "nlp_search"
  "nlp_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlp_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
