# Empty dependencies file for cv_search.
# This may be replaced when dependencies are built.
