file(REMOVE_RECURSE
  "CMakeFiles/cv_search.dir/cv_search.cpp.o"
  "CMakeFiles/cv_search.dir/cv_search.cpp.o.d"
  "cv_search"
  "cv_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
